use crate::rng::{NoiseSource, SweepNoise};
use rand::Rng;
use rand_chacha::ChaCha8Rng;
use saim_ising::{Couplings, IsingModel, Spin, SpinState};

/// Beyond this drive, `tanh(x)` rounds to exactly `±1.0` in `f64`
/// (`2e^{-2x} < 2^{-53}` ulp), and `sign(±1 + u)` with `u ∈ [-1, 1)` is the
/// sign of the saturated activation for every drawable `u` — the update is
/// deterministic, so both the tanh and the noise draw are skipped. This is
/// exact, not approximate: cold sweeps (large `β·I`) cost a compare instead
/// of a transcendental plus an RNG advance. The batched sweep engine
/// ([`crate::ReplicaBatch`]) shares this constant so its per-lane decisions
/// replay the serial machine bit-for-bit.
pub(crate) const SATURATION: f64 = 20.0;

/// A network of probabilistic bits emulating a p-computer in software.
///
/// Each p-bit holds a spin `m_i = ±1`, reads its input
/// `I_i = Σ_j J_ij m_j + h_i` (paper eq. 9) and updates as
/// `m_i = sign(tanh(β I_i) + U(-1,1))` (paper eq. 10). Sequentially updating
/// every p-bit once — [`PbitMachine::sweep`] — is one Monte Carlo sweep (MCS)
/// of Gibbs sampling for `P(m) ∝ exp(-β H(m))` (paper eq. 11).
///
/// The machine keeps the local-field vector and the model energy current
/// incrementally: a flip of spin `j` shifts every `I_i` by `2 J_ij m_j`,
/// which costs one row scan instead of the full `O(n²)` recompute.
///
/// ```
/// use saim_ising::{QuboBuilder, IsingModel};
/// use saim_machine::{new_rng, PbitMachine};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut b = QuboBuilder::new(3);
/// b.add_linear(0, -1.0)?;
/// let model = b.build().to_ising();
/// let mut rng = new_rng(1);
/// let mut machine = PbitMachine::new(&model, &mut rng);
/// for _ in 0..50 {
///     machine.sweep(&model, 4.0, &mut rng);
/// }
/// // Strong negative field on x0's spin drives it up at low temperature.
/// assert_eq!(machine.state().value(0), 1);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct PbitMachine {
    state: SpinState,
    /// `±1.0` mirror of `state`: the sweep hot path works on floats so the
    /// local-field updates and dot products never convert `i8 → f64`.
    spins_f: Vec<f64>,
    local_fields: Vec<f64>,
    energy: f64,
    flips: u64,
}

impl PbitMachine {
    /// Creates a machine with a uniformly random initial state.
    pub fn new(model: &IsingModel, rng: &mut ChaCha8Rng) -> Self {
        let state: SpinState = (0..model.len())
            .map(|_| {
                if rng.gen::<bool>() {
                    Spin::Up
                } else {
                    Spin::Down
                }
            })
            .collect();
        Self::with_state(model, state)
    }

    /// Creates a machine starting from a given spin configuration.
    ///
    /// Initialization performs exactly one field resync (O(n²) dense,
    /// O(nnz) sparse); to re-anneal an existing machine without fresh
    /// allocations use [`PbitMachine::randomize`] or
    /// [`PbitMachine::reset_to`] instead of constructing a new one.
    ///
    /// # Panics
    ///
    /// Panics if `state.len() != model.len()`.
    pub fn with_state(model: &IsingModel, state: SpinState) -> Self {
        assert_eq!(state.len(), model.len(), "state length mismatch");
        let spins_f: Vec<f64> = state.values().iter().map(|&v| f64::from(v)).collect();
        let mut machine = PbitMachine {
            state,
            spins_f,
            local_fields: vec![0.0; model.len()],
            energy: 0.0,
            flips: 0,
        };
        machine.recompute_books(model);
        machine
    }

    /// Reuses the machine in `slot` for a fresh uniformly-random run of
    /// `model` — re-randomizing in place when the size matches (no
    /// allocation), constructing anew otherwise — and returns it.
    ///
    /// This is the shared re-anneal entry point of the restart-based
    /// solvers ([`SimulatedAnnealing`](crate::SimulatedAnnealing),
    /// [`GreedyDescent`](crate::GreedyDescent)), so the reuse rule lives in
    /// one place. Either path draws exactly `model.len()` coin flips from
    /// `rng` and performs exactly one field resync.
    pub fn obtain_randomized<'a>(
        slot: &'a mut Option<PbitMachine>,
        model: &IsingModel,
        rng: &mut ChaCha8Rng,
    ) -> &'a mut PbitMachine {
        match slot {
            Some(m) if m.state().len() == model.len() => m.randomize(model, rng),
            _ => *slot = Some(PbitMachine::new(model, rng)),
        }
        slot.as_mut().expect("just set")
    }

    /// Re-initializes the machine in place from `state`, reusing every
    /// internal buffer — the re-anneal path: no allocation when the size is
    /// unchanged, and exactly one field resync.
    ///
    /// # Panics
    ///
    /// Panics if `state.len() != model.len()`.
    pub fn reset_to(&mut self, model: &IsingModel, state: &SpinState) {
        assert_eq!(state.len(), model.len(), "state length mismatch");
        if self.state.len() == state.len() {
            self.state.copy_from(state);
        } else {
            self.state = state.clone();
            self.spins_f.resize(state.len(), 0.0);
            self.local_fields.resize(state.len(), 0.0);
        }
        for (s, &v) in self.spins_f.iter_mut().zip(state.values()) {
            *s = f64::from(v);
        }
        self.recompute_books(model);
    }

    /// Rebuilds the local fields (O(N²) on dense models, O(nnz) on sparse
    /// ones) and then the energy in O(N) via
    /// [`PbitMachine::energy_from_fields`].
    fn recompute_books(&mut self, model: &IsingModel) {
        let couplings = model.couplings();
        for (i, (field, &h)) in self.local_fields.iter_mut().zip(model.fields()).enumerate() {
            *field = couplings.row_dot_f64(i, &self.spins_f) + h;
        }
        self.energy = self.energy_from_fields(model);
    }

    /// The model energy recomputed in O(N) from the incrementally-maintained
    /// local fields:
    ///
    /// ```text
    /// H = offset − ½ Σ_i s_i (I_i + h_i)
    /// ```
    ///
    /// (since `I_i = Σ_j J_ij s_j + h_i`, the pair term is
    /// `½ Σ_i s_i (I_i − h_i)`). This replaces the O(N²) `model.energy`
    /// recompute everywhere the machine already holds current fields — the
    /// SAIM λ-resync path in particular.
    pub fn energy_from_fields(&self, model: &IsingModel) -> f64 {
        let mut acc = 0.0;
        for ((&s, &f), &h) in self
            .spins_f
            .iter()
            .zip(&self.local_fields)
            .zip(model.fields())
        {
            acc += s * (f + h);
        }
        model.offset() - 0.5 * acc
    }

    /// The current spin configuration.
    pub fn state(&self) -> &SpinState {
        &self.state
    }

    /// The current model energy `H(m)`, maintained incrementally.
    pub fn energy(&self) -> f64 {
        self.energy
    }

    /// Total number of spin flips performed so far.
    pub fn flips(&self) -> u64 {
        self.flips
    }

    /// The current local field `I_i` of p-bit `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of bounds.
    pub fn local_field(&self, i: usize) -> f64 {
        self.local_fields[i]
    }

    /// Re-reads fields and energy from the model.
    ///
    /// Call after the model's linear part changed (SAIM's λ update) while
    /// keeping the spin state.
    pub fn resync(&mut self, model: &IsingModel) {
        assert_eq!(self.state.len(), model.len(), "state length mismatch");
        self.recompute_books(model);
    }

    /// Re-randomizes the spin state uniformly (the start of a fresh SA run).
    ///
    /// Reuses every internal buffer and performs exactly one field resync —
    /// re-annealing allocates nothing.
    ///
    /// # Panics
    ///
    /// Panics if the machine was built for a different model size.
    pub fn randomize(&mut self, model: &IsingModel, rng: &mut ChaCha8Rng) {
        assert_eq!(self.state.len(), model.len(), "state length mismatch");
        for i in 0..self.state.len() {
            let spin = if rng.gen::<bool>() {
                Spin::Up
            } else {
                Spin::Down
            };
            self.state.set(i, spin);
            self.spins_f[i] = f64::from(spin.value());
        }
        self.recompute_books(model);
    }

    #[inline]
    fn apply_flip(&mut self, model: &IsingModel, i: usize) {
        let old = self.spins_f[i];
        // ΔH for flipping spin i is 2 s_i I_i
        self.energy += 2.0 * old * self.local_fields[i];
        self.state.flip(i);
        self.spins_f[i] = -old;
        let delta = -2.0 * old; // new - old spin value
        match model.couplings() {
            Couplings::Dense(m) => {
                Self::propagate_dense(&mut self.local_fields, m.row(i), delta);
            }
            // sparse fast path: only actual neighbours shift (Qubo::to_ising
            // stores low-density models as CSR for exactly this loop)
            Couplings::Sparse(m) => {
                for (j, jij) in m.row_iter(i) {
                    self.local_fields[j] += jij * delta;
                }
            }
        }
        self.flips += 1;
    }

    /// The dense flip propagation `I += delta · row`, chunked into blocks of
    /// 8 lanes so the axpy update stays in vector registers. Elementwise, so
    /// the results are bit-identical to the scalar loop.
    #[inline]
    fn propagate_dense(fields: &mut [f64], row: &[f64], delta: f64) {
        let mut field_blocks = fields.chunks_exact_mut(8);
        let mut row_blocks = row.chunks_exact(8);
        for (f, r) in (&mut field_blocks).zip(&mut row_blocks) {
            for lane in 0..8 {
                f[lane] += r[lane] * delta;
            }
        }
        for (f, &jij) in field_blocks
            .into_remainder()
            .iter_mut()
            .zip(row_blocks.remainder())
        {
            *f += jij * delta;
        }
    }

    /// One Monte Carlo sweep: sequentially updates every p-bit at inverse
    /// temperature `beta` with the stochastic rule of paper eq. 10.
    ///
    /// Noise is drawn per decision from `rng`; the annealers' hot paths use
    /// [`PbitMachine::sweep_buffered`], which consumes the same stream in
    /// blocks and replays this method bit-for-bit (see
    /// [`NoiseSource`](crate::NoiseSource) for the draw-order contract).
    ///
    /// Returns the number of spins that changed.
    ///
    /// # Panics
    ///
    /// Panics if the machine was built for a different model size.
    pub fn sweep(&mut self, model: &IsingModel, beta: f64, rng: &mut ChaCha8Rng) -> usize {
        self.sweep_with(model, beta, rng)
    }

    /// [`PbitMachine::sweep`] drawing its noise from a block-buffered
    /// [`NoiseSource`] — one buffer load per undecided spin instead of a
    /// generator round trip. Bit-identical to the per-decision path on the
    /// same stream.
    ///
    /// # Panics
    ///
    /// Panics if the machine was built for a different model size.
    pub fn sweep_buffered(
        &mut self,
        model: &IsingModel,
        beta: f64,
        noise: &mut NoiseSource,
    ) -> usize {
        self.sweep_with(model, beta, noise)
    }

    fn sweep_with<N: SweepNoise>(&mut self, model: &IsingModel, beta: f64, noise: &mut N) -> usize {
        assert_eq!(self.state.len(), model.len(), "state length mismatch");
        let mut changed = 0;
        for i in 0..self.state.len() {
            // fused activation/noise decision: m_i = sign(tanh(βI_i) + U(−1,1));
            // a flip happens iff the drawn sign disagrees with the cached
            // spin, and a saturated drive (|βI| ≥ SATURATION) decides without
            // tanh or a draw — see the constant's docs
            let drive = beta * self.local_fields[i];
            let new_up = if drive >= SATURATION {
                true
            } else if drive <= -SATURATION {
                false
            } else {
                let activation = drive.tanh();
                let noise: f64 = noise.noise_symmetric();
                activation + noise >= 0.0
            };
            if new_up != (self.spins_f[i] > 0.0) {
                self.apply_flip(model, i);
                changed += 1;
            }
        }
        changed
    }

    /// One Metropolis sweep: sequentially proposes a flip of every spin and
    /// accepts with probability `min(1, exp(-β ΔH))`.
    ///
    /// This is the classic single-flip dynamics of digital annealers (and of
    /// the PT-DA baseline's hardware), provided alongside the p-bit Gibbs
    /// rule of [`PbitMachine::sweep`] so the two chains can be compared on
    /// identical models. Both sample the same Boltzmann distribution
    /// (eq. 11) in equilibrium.
    ///
    /// Returns the number of spins that changed.
    ///
    /// # Panics
    ///
    /// Panics if the machine was built for a different model size.
    pub fn metropolis_sweep(
        &mut self,
        model: &IsingModel,
        beta: f64,
        rng: &mut ChaCha8Rng,
    ) -> usize {
        self.metropolis_sweep_with(model, beta, rng)
    }

    /// [`PbitMachine::metropolis_sweep`] drawing its accept tests from a
    /// block-buffered [`NoiseSource`]. Bit-identical to the per-decision
    /// path on the same stream.
    ///
    /// # Panics
    ///
    /// Panics if the machine was built for a different model size.
    pub fn metropolis_sweep_buffered(
        &mut self,
        model: &IsingModel,
        beta: f64,
        noise: &mut NoiseSource,
    ) -> usize {
        self.metropolis_sweep_with(model, beta, noise)
    }

    fn metropolis_sweep_with<N: SweepNoise>(
        &mut self,
        model: &IsingModel,
        beta: f64,
        noise: &mut N,
    ) -> usize {
        assert_eq!(self.state.len(), model.len(), "state length mismatch");
        let mut changed = 0;
        for i in 0..self.state.len() {
            let delta = 2.0 * self.spins_f[i] * self.local_fields[i];
            let accept = delta <= 0.0 || noise.noise_unit() < (-beta * delta).exp();
            if accept {
                self.apply_flip(model, i);
                changed += 1;
            }
        }
        changed
    }

    /// One deterministic greedy sweep: flips each spin whose flip strictly
    /// lowers the energy (the β → ∞ limit without noise).
    ///
    /// Returns the number of spins that changed.
    pub fn greedy_sweep(&mut self, model: &IsingModel) -> usize {
        assert_eq!(self.state.len(), model.len(), "state length mismatch");
        let mut changed = 0;
        for i in 0..self.state.len() {
            let delta = 2.0 * self.spins_f[i] * self.local_fields[i];
            if delta < 0.0 {
                self.apply_flip(model, i);
                changed += 1;
            }
        }
        changed
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::new_rng;
    use saim_ising::QuboBuilder;

    fn frustrated_model() -> IsingModel {
        let mut b = QuboBuilder::new(4);
        b.add_pair(0, 1, 2.0).unwrap();
        b.add_pair(1, 2, -1.5).unwrap();
        b.add_pair(2, 3, 1.0).unwrap();
        b.add_linear(0, -1.0).unwrap();
        b.add_linear(3, 0.5).unwrap();
        b.build().to_ising()
    }

    #[test]
    fn incremental_energy_matches_full_recompute() {
        let model = frustrated_model();
        let mut rng = new_rng(9);
        let mut machine = PbitMachine::new(&model, &mut rng);
        for sweep in 0..200 {
            machine.sweep(&model, 0.05 * sweep as f64, &mut rng);
            let full = model.energy(machine.state());
            assert!(
                (machine.energy() - full).abs() < 1e-9,
                "drift at sweep {sweep}: {} vs {full}",
                machine.energy()
            );
        }
    }

    #[test]
    fn incremental_fields_match_model() {
        let model = frustrated_model();
        let mut rng = new_rng(11);
        let mut machine = PbitMachine::new(&model, &mut rng);
        for _ in 0..50 {
            machine.sweep(&model, 1.0, &mut rng);
        }
        for i in 0..model.len() {
            let expected = model.local_field(machine.state(), i);
            assert!((machine.local_field(i) - expected).abs() < 1e-9);
        }
    }

    #[test]
    fn beta_zero_is_unbiased_coin() {
        // At β = 0 the activation is 0 and each p-bit is an unbiased coin.
        let model = frustrated_model();
        let mut rng = new_rng(5);
        let mut machine = PbitMachine::new(&model, &mut rng);
        let mut ups = 0usize;
        let sweeps = 2000;
        for _ in 0..sweeps {
            machine.sweep(&model, 0.0, &mut rng);
            ups += machine.state().count_up();
        }
        let frac = ups as f64 / (sweeps * model.len()) as f64;
        assert!((frac - 0.5).abs() < 0.02, "fraction up = {frac}");
    }

    #[test]
    fn high_beta_finds_ground_state_of_simple_model() {
        // Single strong field: ground state is spin 0 up.
        let mut b = QuboBuilder::new(1);
        b.add_linear(0, -2.0).unwrap();
        let model = b.build().to_ising();
        let mut rng = new_rng(3);
        let mut machine = PbitMachine::new(&model, &mut rng);
        for _ in 0..100 {
            machine.sweep(&model, 20.0, &mut rng);
        }
        assert_eq!(machine.state().value(0), 1);
    }

    #[test]
    fn greedy_sweep_never_increases_energy() {
        let model = frustrated_model();
        let mut rng = new_rng(17);
        let mut machine = PbitMachine::new(&model, &mut rng);
        let mut prev = machine.energy();
        while machine.greedy_sweep(&model) > 0 {
            assert!(machine.energy() <= prev + 1e-12);
            prev = machine.energy();
        }
        // fixed point: no single flip improves
        for i in 0..model.len() {
            assert!(model.delta_energy(machine.state(), i) >= -1e-12);
        }
    }

    /// A ring model big and sparse enough that `to_ising` stores it as CSR.
    fn sparse_ring_model(n: usize) -> IsingModel {
        let mut b = QuboBuilder::new(n);
        for i in 0..n {
            b.add_pair(i, (i + 1) % n, if i % 2 == 0 { 1.0 } else { -1.5 })
                .unwrap();
            b.add_linear(i, 0.3 - 0.1 * (i % 5) as f64).unwrap();
        }
        b.build().to_ising()
    }

    #[test]
    fn low_density_models_sweep_over_csr_and_keep_books() {
        let model = sparse_ring_model(80);
        assert!(
            matches!(model.couplings(), Couplings::Sparse(_)),
            "a large ring model should convert to CSR couplings"
        );
        let mut rng = new_rng(13);
        let mut machine = PbitMachine::new(&model, &mut rng);
        for sweep in 0..100 {
            machine.sweep(&model, 0.1 * sweep as f64, &mut rng);
        }
        assert!(
            (machine.energy() - model.energy(machine.state())).abs() < 1e-9,
            "energy drifted on the CSR path"
        );
        for i in 0..model.len() {
            let expected = model.local_field(machine.state(), i);
            assert!(
                (machine.local_field(i) - expected).abs() < 1e-9,
                "field {i}"
            );
        }
    }

    #[test]
    fn small_or_dense_models_stay_on_dense_couplings() {
        let small = sparse_ring_model(8); // below the CSR size cut
        assert!(matches!(small.couplings(), Couplings::Dense(_)));
        let dense = frustrated_model(); // tiny and dense
        assert!(matches!(dense.couplings(), Couplings::Dense(_)));
    }

    #[test]
    fn buffered_sweeps_replay_the_per_decision_path() {
        // the block-buffered noise source must not change a single decision:
        // same stream, same trajectory, bit-identical energies
        let model = frustrated_model();
        let mut rng_a = new_rng(8);
        let mut a = PbitMachine::new(&model, &mut rng_a);
        let mut rng_b = new_rng(8);
        let b_init = PbitMachine::new(&model, &mut rng_b);
        let mut b = b_init;
        let mut noise = NoiseSource::new(rng_b);
        for sweep in 0..150 {
            let beta = 0.05 * sweep as f64;
            if sweep % 3 == 2 {
                a.metropolis_sweep(&model, beta, &mut rng_a);
                b.metropolis_sweep_buffered(&model, beta, &mut noise);
            } else {
                a.sweep(&model, beta, &mut rng_a);
                b.sweep_buffered(&model, beta, &mut noise);
            }
            assert_eq!(a.state(), b.state(), "sweep {sweep}");
            assert_eq!(a.energy().to_bits(), b.energy().to_bits(), "sweep {sweep}");
        }
    }

    #[test]
    fn reset_to_matches_fresh_construction() {
        let model = frustrated_model();
        let mut rng = new_rng(6);
        let mut machine = PbitMachine::new(&model, &mut rng);
        for _ in 0..20 {
            machine.sweep(&model, 1.0, &mut rng);
        }
        let target = SpinState::from_values(&[1, -1, -1, 1]);
        machine.reset_to(&model, &target);
        let fresh = PbitMachine::with_state(&model, target.clone());
        assert_eq!(machine.state(), fresh.state());
        assert_eq!(machine.energy().to_bits(), fresh.energy().to_bits());
        for i in 0..model.len() {
            assert_eq!(
                machine.local_field(i).to_bits(),
                fresh.local_field(i).to_bits()
            );
        }
        // flips survive a reset (they count the machine's lifetime work)
        assert!(machine.flips() > 0);
    }

    #[test]
    fn resync_after_field_change() {
        let mut model = frustrated_model();
        let mut rng = new_rng(21);
        let mut machine = PbitMachine::new(&model, &mut rng);
        machine.sweep(&model, 1.0, &mut rng);
        model.fields_mut()[2] += 3.0;
        machine.resync(&model);
        assert!((machine.energy() - model.energy(machine.state())).abs() < 1e-12);
        for i in 0..model.len() {
            assert!((machine.local_field(i) - model.local_field(machine.state(), i)).abs() < 1e-12);
        }
    }

    #[test]
    fn randomize_changes_state_and_keeps_books() {
        let model = frustrated_model();
        let mut rng = new_rng(2);
        let mut machine = PbitMachine::new(&model, &mut rng);
        machine.randomize(&model, &mut rng);
        assert!((machine.energy() - model.energy(machine.state())).abs() < 1e-12);
    }

    #[test]
    fn metropolis_matches_gibbs_equilibrium_on_one_spin() {
        // both chains must converge to P(up) = (1 + tanh(βh)) / 2
        let mut b = QuboBuilder::new(1);
        b.add_linear(0, -1.0).unwrap();
        let model = b.build().to_ising();
        let h = model.fields()[0];
        let beta = 0.9;
        let expected = (beta * h).tanh() / 2.0 + 0.5;
        for use_metropolis in [false, true] {
            let mut rng = new_rng(55);
            let mut machine = PbitMachine::new(&model, &mut rng);
            let mut ups = 0usize;
            let sweeps = 40_000;
            for _ in 0..sweeps {
                if use_metropolis {
                    machine.metropolis_sweep(&model, beta, &mut rng);
                } else {
                    machine.sweep(&model, beta, &mut rng);
                }
                ups += usize::from(machine.state().value(0) == 1);
            }
            let p_up = ups as f64 / sweeps as f64;
            assert!(
                (p_up - expected).abs() < 0.02,
                "metropolis={use_metropolis}: p_up = {p_up}, expected {expected}"
            );
        }
    }

    #[test]
    fn metropolis_keeps_energy_books() {
        let model = frustrated_model();
        let mut rng = new_rng(77);
        let mut machine = PbitMachine::new(&model, &mut rng);
        for sweep in 0..100 {
            machine.metropolis_sweep(&model, 0.1 * sweep as f64, &mut rng);
            assert!(
                (machine.energy() - model.energy(machine.state())).abs() < 1e-9,
                "drift at sweep {sweep}"
            );
        }
    }

    #[test]
    fn metropolis_at_high_beta_descends() {
        let model = frustrated_model();
        let mut rng = new_rng(31);
        let mut machine = PbitMachine::new(&model, &mut rng);
        let start = machine.energy();
        for _ in 0..100 {
            machine.metropolis_sweep(&model, 50.0, &mut rng);
        }
        assert!(machine.energy() <= start + 1e-9);
        // and the endpoint is a local minimum up to rare accepted uphill moves
        let uphill = (0..model.len())
            .filter(|&i| model.delta_energy(machine.state(), i) < -1e-9)
            .count();
        assert_eq!(uphill, 0, "still has strictly improving flips");
    }

    #[test]
    fn boltzmann_ratio_on_two_state_system() {
        // One spin, field h: P(up)/P(down) should approach exp(2βh).
        let mut b = QuboBuilder::new(1);
        b.add_linear(0, -1.0).unwrap(); // ising field 0.5 on the spin
        let model = b.build().to_ising();
        let h = model.fields()[0];
        let beta = 1.2;
        let mut rng = new_rng(33);
        let mut machine = PbitMachine::new(&model, &mut rng);
        let mut ups = 0usize;
        let sweeps = 40_000;
        for _ in 0..sweeps {
            machine.sweep(&model, beta, &mut rng);
            if machine.state().value(0) == 1 {
                ups += 1;
            }
        }
        let p_up = ups as f64 / sweeps as f64;
        let expected = (beta * h).tanh() / 2.0 + 0.5;
        assert!(
            (p_up - expected).abs() < 0.02,
            "p_up = {p_up}, expected {expected}"
        );
    }
}
