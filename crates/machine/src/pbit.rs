use crate::bracket::gibbs_decision;
use crate::rng::{NoiseSource, SweepNoise};
use rand::Rng;
use rand_chacha::ChaCha8Rng;
use saim_ising::{Couplings, IsingModel, Spin, SpinState};

/// Beyond this drive, `tanh(x)` rounds to exactly `±1.0` in `f64`
/// (`2e^{-2x} < 2^{-53}` ulp), and `sign(±1 + u)` with `u ∈ [-1, 1)` is the
/// sign of the saturated activation for every drawable `u` — the update is
/// deterministic, so both the tanh and the noise draw are skipped. This is
/// exact, not approximate: cold sweeps (large `β·I`) cost a compare instead
/// of a transcendental plus an RNG advance. The batched sweep engine
/// ([`crate::ReplicaBatch`]) shares this constant so its per-lane decisions
/// replay the serial machine bit-for-bit.
pub(crate) const SATURATION: f64 = 20.0;

/// Relative pad (`1 + 2⁻¹⁶`) on the per-spin saturation classification: a
/// spin counts as *never-saturating* at β only when `β · D_i · CLASS_PAD`
/// stays below [`SATURATION`], where `D_i = |h_i| + Σ_j |J_ij|` bounds the
/// true local field ([`IsingModel::drive_bounds`]).
///
/// The pad is what makes dropping the per-update saturation compares sound:
/// the incrementally-maintained field can exceed the real bound only by
/// accumulated rounding — about one part in 2⁵² per neighbour flip — so the
/// classification would need on the order of 2³⁶ flips *of one spin's
/// neighbours between resyncs* to be breached, far beyond any realizable
/// run. The oracle replay proptests and the determinism suites pin the
/// contract empirically. Shared by the serial and batched engines.
pub(crate) const CLASS_PAD: f64 = 1.0 + 1.0 / (1u64 << 16) as f64;

/// Upward pad on the settled-filter thresholds: `field · spin ≥
/// (SATURATION / β) · SETTLE_PAD_UP` *certifies* `β · field · spin ≥
/// SATURATION` despite the rounding of the division and the final multiply
/// (the products themselves are exact — spin is ±1.0) — so a spin passing
/// the settled test provably takes the old kernel's deterministic
/// short-circuit with no flip and no draw, independent of any
/// classification. Division rounding can only make the filter
/// conservative: a settled spin that fails it merely pays the exact
/// compares. Shared by the serial and batched engines.
pub(crate) const SETTLE_PAD_UP: f64 = 1.0 + 16.0 * f64::EPSILON;

/// Plain-data image of a [`PbitMachine`]'s books — exact field and energy
/// values included — used by the checkpoint layer. The fields must be the
/// *incrementally maintained* values, not a recompute (see
/// [`PbitMachine::from_snapshot`]).
#[derive(Debug, Clone, PartialEq)]
pub(crate) struct MachineSnapshot {
    /// Spin values (±1) in index order.
    pub spins: Vec<i8>,
    /// Incrementally-maintained local fields, exact.
    pub fields: Vec<f64>,
    /// Incrementally-maintained energy, exact.
    pub energy: f64,
    /// Lifetime flip counter.
    pub flips: u64,
}

/// A network of probabilistic bits emulating a p-computer in software.
///
/// Each p-bit holds a spin `m_i = ±1`, reads its input
/// `I_i = Σ_j J_ij m_j + h_i` (paper eq. 9) and updates as
/// `m_i = sign(tanh(β I_i) + U(-1,1))` (paper eq. 10). Sequentially updating
/// every p-bit once — [`PbitMachine::sweep`] — is one Monte Carlo sweep (MCS)
/// of Gibbs sampling for `P(m) ∝ exp(-β H(m))` (paper eq. 11).
///
/// The machine keeps the local-field vector and the model energy current
/// incrementally: a flip of spin `j` shifts every `I_i` by `2 J_ij m_j`,
/// which costs one row scan instead of the full `O(n²)` recompute.
///
/// # The three-tier decision kernel
///
/// Every Gibbs update resolves `m_i = sign(tanh(β I_i) + u)` through three
/// tiers of increasing cost, each bit-identical to the exact rule:
///
/// 1. **Settled scan + per-spin saturation classification.** A blocked
///    scan skips whole runs of spins whose `field · spin` clears the
///    padded `SATURATION / β` threshold — each is certifiably saturated
///    *and* aligned, so the exact rule would keep it with no draw. For the
///    few spins the scan leaves undecided, the per-spin drive bounds
///    `D_i = |h_i| + Σ_j |J_ij|` ([`IsingModel::drive_bounds`], cached
///    with the books) classify on demand whether the spin can reach
///    `|β I_i| ≥ 20` at all: spins that can *never* saturate at this β —
///    the weakly-coupled slack bits that dominate hot-regime knapsack
///    sweeps — skip the saturation compares entirely (see `CLASS_PAD` for
///    why dropping them is sound). The classification is a pure two-multiply
///    test of the precomputed bound, so a β that changes every sweep (any
///    annealing schedule) costs no reclassification pass.
/// 2. **Saturation short-circuit** (maybe-saturating spins only): a drive
///    past `±20` — where `tanh` rounds to exactly `±1.0` — decides without
///    `tanh` or a draw; the deep-quench fast path.
/// 3. **Certified tanh bracket** ([`crate::bracket`]): one `U(-1, 1)` word
///    is drawn, then cheap polynomial/rational bounds `lo ≤ tanh ≤ hi` (no
///    `libm` call) decide the sign whenever `u` falls outside `[-hi, -lo)`;
///    only the residual sliver (well under 1% of hot-regime draws)
///    computes the exact `tanh`.
///
/// **RNG-consumption contract:** tier 3 consumes exactly one `u64` from the
/// stream per update, whether the bracket or the exact `tanh` decides;
/// tiers 1–2 consume nothing, exactly like the pre-bracket kernel. The
/// trajectory is therefore bit-identical to
/// [`PbitMachine::sweep_exact_oracle`] — the retained exact-`tanh`
/// reference kernel — for every seed, schedule, batch width and thread
/// count, as the oracle replay proptests and `tests/determinism.rs` assert.
///
/// ```
/// use saim_ising::{QuboBuilder, IsingModel};
/// use saim_machine::{new_rng, PbitMachine};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut b = QuboBuilder::new(3);
/// b.add_linear(0, -1.0)?;
/// let model = b.build().to_ising();
/// let mut rng = new_rng(1);
/// let mut machine = PbitMachine::new(&model, &mut rng);
/// for _ in 0..50 {
///     machine.sweep(&model, 4.0, &mut rng);
/// }
/// // Strong negative field on x0's spin drives it up at low temperature.
/// assert_eq!(machine.state().value(0), 1);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct PbitMachine {
    state: SpinState,
    /// `±1.0` mirror of `state`: the sweep hot path works on floats so the
    /// local-field updates and dot products never convert `i8 → f64`.
    spins_f: Vec<f64>,
    local_fields: Vec<f64>,
    energy: f64,
    flips: u64,
    /// Per-spin drive bounds `D_i` (tier 1 of the decision kernel),
    /// refreshed lazily after a book recompute so solvers that never take a
    /// Gibbs sweep (greedy descent, Metropolis) don't pay for them. Spin
    /// `i`'s classification at any β is the pure test
    /// `β · D_i · CLASS_PAD ≥ SATURATION`, evaluated on demand for the few
    /// spins the settled scan leaves undecided — so a changing β (every
    /// annealing schedule) costs no per-spin reclassification pass.
    drive_bounds: Vec<f64>,
    /// Whether `drive_bounds` must be recomputed from the model before the
    /// next classification.
    bounds_stale: bool,
}

impl PbitMachine {
    /// Creates a machine with a uniformly random initial state.
    pub fn new(model: &IsingModel, rng: &mut ChaCha8Rng) -> Self {
        let state: SpinState = (0..model.len())
            .map(|_| {
                if rng.gen::<bool>() {
                    Spin::Up
                } else {
                    Spin::Down
                }
            })
            .collect();
        Self::with_state(model, state)
    }

    /// Creates a machine starting from a given spin configuration.
    ///
    /// Initialization performs exactly one field resync (O(n²) dense,
    /// O(nnz) sparse); to re-anneal an existing machine without fresh
    /// allocations use [`PbitMachine::randomize`] or
    /// [`PbitMachine::reset_to`] instead of constructing a new one.
    ///
    /// # Panics
    ///
    /// Panics if `state.len() != model.len()`.
    pub fn with_state(model: &IsingModel, state: SpinState) -> Self {
        assert_eq!(state.len(), model.len(), "state length mismatch");
        let spins_f: Vec<f64> = state.values().iter().map(|&v| f64::from(v)).collect();
        let mut machine = PbitMachine {
            state,
            spins_f,
            local_fields: vec![0.0; model.len()],
            energy: 0.0,
            flips: 0,
            drive_bounds: vec![0.0; model.len()],
            bounds_stale: true,
        };
        machine.recompute_books(model);
        machine
    }

    /// Reuses the machine in `slot` for a fresh uniformly-random run of
    /// `model` — re-randomizing in place when the size matches (no
    /// allocation), constructing anew otherwise — and returns it.
    ///
    /// This is the shared re-anneal entry point of the restart-based
    /// solvers ([`SimulatedAnnealing`](crate::SimulatedAnnealing),
    /// [`GreedyDescent`](crate::GreedyDescent)), so the reuse rule lives in
    /// one place. Either path draws exactly `model.len()` coin flips from
    /// `rng` and performs exactly one field resync.
    pub fn obtain_randomized<'a>(
        slot: &'a mut Option<PbitMachine>,
        model: &IsingModel,
        rng: &mut ChaCha8Rng,
    ) -> &'a mut PbitMachine {
        match slot {
            Some(m) if m.state().len() == model.len() => m.randomize(model, rng),
            _ => *slot = Some(PbitMachine::new(model, rng)),
        }
        slot.as_mut().expect("just set")
    }

    /// Captures the machine's books exactly — spins, incrementally
    /// maintained local fields and energy, and the flip counter — for the
    /// checkpoint layer.
    pub(crate) fn snapshot(&self) -> MachineSnapshot {
        MachineSnapshot {
            spins: self.state.values().to_vec(),
            fields: self.local_fields.clone(),
            energy: self.energy,
            flips: self.flips,
        }
    }

    /// Rebuilds a machine from a [`PbitMachine::snapshot`] **without a field
    /// resync**: the stored fields and energy are installed verbatim.
    ///
    /// This is deliberate. [`PbitMachine::with_state`] recomputes the books
    /// from the model, but a recomputed field is summed in a different
    /// association order than the incrementally-maintained one and so is not
    /// bit-identical to it; resuming through a resync would fork the
    /// trajectory from the uninterrupted run. Drive bounds are derived data
    /// and are lazily recomputed on the first sweep.
    ///
    /// # Panics
    ///
    /// Panics if the snapshot's length does not match `model.len()` (the
    /// checkpoint loader validates sizes before calling this).
    pub(crate) fn from_snapshot(model: &IsingModel, snap: &MachineSnapshot) -> Self {
        assert_eq!(snap.spins.len(), model.len(), "snapshot length mismatch");
        assert_eq!(snap.fields.len(), model.len(), "snapshot field mismatch");
        let state = SpinState::from_values(&snap.spins);
        let spins_f: Vec<f64> = state.values().iter().map(|&v| f64::from(v)).collect();
        PbitMachine {
            state,
            spins_f,
            local_fields: snap.fields.clone(),
            energy: snap.energy,
            flips: snap.flips,
            drive_bounds: vec![0.0; model.len()],
            bounds_stale: true,
        }
    }

    /// Re-initializes the machine in place from `state`, reusing every
    /// internal buffer — the re-anneal path: no allocation when the size is
    /// unchanged, and exactly one field resync.
    ///
    /// # Panics
    ///
    /// Panics if `state.len() != model.len()`.
    pub fn reset_to(&mut self, model: &IsingModel, state: &SpinState) {
        assert_eq!(state.len(), model.len(), "state length mismatch");
        if self.state.len() == state.len() {
            self.state.copy_from(state);
        } else {
            self.state = state.clone();
            self.spins_f.resize(state.len(), 0.0);
            self.local_fields.resize(state.len(), 0.0);
            self.drive_bounds.resize(state.len(), 0.0);
        }
        for (s, &v) in self.spins_f.iter_mut().zip(state.values()) {
            *s = f64::from(v);
        }
        self.recompute_books(model);
    }

    /// Rebuilds the local fields (O(N²) on dense models, O(nnz) on sparse
    /// ones) and then the energy in O(N) via
    /// [`PbitMachine::energy_from_fields`].
    ///
    /// Also invalidates the cached drive bounds and saturation
    /// classification: every book recompute may follow a model change (a
    /// SAIM λ-resync, or machine reuse on a different model of the same
    /// size), and the bounds depend on `|h|` and `|J|`.
    fn recompute_books(&mut self, model: &IsingModel) {
        let couplings = model.couplings();
        for (i, (field, &h)) in self.local_fields.iter_mut().zip(model.fields()).enumerate() {
            *field = couplings.row_dot_f64(i, &self.spins_f) + h;
        }
        self.energy = self.energy_from_fields(model);
        self.bounds_stale = true;
    }

    /// Refreshes the per-spin drive bounds (lazily, only after a book
    /// recompute) — tier 1 of the decision kernel. One abs-sum row pass per
    /// spin (O(N²) dense / O(nnz) sparse), the same cost as the field
    /// resync that staled them.
    fn ensure_drive_bounds(&mut self, model: &IsingModel) {
        if self.bounds_stale {
            let couplings = model.couplings();
            for (i, (d, &h)) in self.drive_bounds.iter_mut().zip(model.fields()).enumerate() {
                *d = h.abs() + couplings.row_abs_sum(i);
            }
            self.bounds_stale = false;
        }
    }

    /// The model energy recomputed in O(N) from the incrementally-maintained
    /// local fields:
    ///
    /// ```text
    /// H = offset − ½ Σ_i s_i (I_i + h_i)
    /// ```
    ///
    /// (since `I_i = Σ_j J_ij s_j + h_i`, the pair term is
    /// `½ Σ_i s_i (I_i − h_i)`). This replaces the O(N²) `model.energy`
    /// recompute everywhere the machine already holds current fields — the
    /// SAIM λ-resync path in particular.
    pub fn energy_from_fields(&self, model: &IsingModel) -> f64 {
        let mut acc = 0.0;
        for ((&s, &f), &h) in self
            .spins_f
            .iter()
            .zip(&self.local_fields)
            .zip(model.fields())
        {
            acc += s * (f + h);
        }
        model.offset() - 0.5 * acc
    }

    /// The current spin configuration.
    pub fn state(&self) -> &SpinState {
        &self.state
    }

    /// The current model energy `H(m)`, maintained incrementally.
    pub fn energy(&self) -> f64 {
        self.energy
    }

    /// Total number of spin flips performed so far.
    pub fn flips(&self) -> u64 {
        self.flips
    }

    /// The current local field `I_i` of p-bit `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of bounds.
    pub fn local_field(&self, i: usize) -> f64 {
        self.local_fields[i]
    }

    /// Re-reads fields and energy from the model.
    ///
    /// Call after the model's linear part changed (SAIM's λ update) while
    /// keeping the spin state.
    pub fn resync(&mut self, model: &IsingModel) {
        assert_eq!(self.state.len(), model.len(), "state length mismatch");
        self.recompute_books(model);
    }

    /// Re-randomizes the spin state uniformly (the start of a fresh SA run).
    ///
    /// Reuses every internal buffer and performs exactly one field resync —
    /// re-annealing allocates nothing.
    ///
    /// # Panics
    ///
    /// Panics if the machine was built for a different model size.
    pub fn randomize(&mut self, model: &IsingModel, rng: &mut ChaCha8Rng) {
        assert_eq!(self.state.len(), model.len(), "state length mismatch");
        for i in 0..self.state.len() {
            let spin = if rng.gen::<bool>() {
                Spin::Up
            } else {
                Spin::Down
            };
            self.state.set(i, spin);
            self.spins_f[i] = f64::from(spin.value());
        }
        self.recompute_books(model);
    }

    #[inline]
    fn apply_flip(&mut self, model: &IsingModel, i: usize) {
        let old = self.spins_f[i];
        // ΔH for flipping spin i is 2 s_i I_i
        self.energy += 2.0 * old * self.local_fields[i];
        self.state.flip(i);
        self.spins_f[i] = -old;
        let delta = -2.0 * old; // new - old spin value
        match model.couplings() {
            Couplings::Dense(m) => {
                propagate_dense(&mut self.local_fields, m.row(i), delta);
            }
            // sparse fast path: only actual neighbours shift (Qubo::to_ising
            // stores low-density models as CSR for exactly this loop)
            Couplings::Sparse(m) => {
                for (j, jij) in m.row_iter(i) {
                    self.local_fields[j] += jij * delta;
                }
            }
        }
        self.flips += 1;
    }

    /// One Monte Carlo sweep: sequentially updates every p-bit at inverse
    /// temperature `beta` with the stochastic rule of paper eq. 10.
    ///
    /// Noise is drawn per decision from `rng`; the annealers' hot paths use
    /// [`PbitMachine::sweep_buffered`], which consumes the same stream in
    /// blocks and replays this method bit-for-bit (see
    /// [`NoiseSource`](crate::NoiseSource) for the draw-order contract).
    ///
    /// Returns the number of spins that changed.
    ///
    /// # Panics
    ///
    /// Panics if the machine was built for a different model size.
    pub fn sweep(&mut self, model: &IsingModel, beta: f64, rng: &mut ChaCha8Rng) -> usize {
        self.sweep_with(model, beta, rng)
    }

    /// [`PbitMachine::sweep`] drawing its noise from a block-buffered
    /// [`NoiseSource`] — one buffer load per undecided spin instead of a
    /// generator round trip. Bit-identical to the per-decision path on the
    /// same stream.
    ///
    /// # Panics
    ///
    /// Panics if the machine was built for a different model size.
    pub fn sweep_buffered(
        &mut self,
        model: &IsingModel,
        beta: f64,
        noise: &mut NoiseSource,
    ) -> usize {
        self.sweep_with(model, beta, noise)
    }

    fn sweep_with<N: SweepNoise>(&mut self, model: &IsingModel, beta: f64, noise: &mut N) -> usize {
        assert_eq!(self.state.len(), model.len(), "state length mismatch");
        self.ensure_drive_bounds(model);
        // `field · spin ≥ settle` certifies saturated *and* aligned (see
        // `SETTLE_PAD_UP`) — independent of any per-spin bound, so one
        // scalar threshold serves the whole scan; β = 0 maps to +∞
        // (nothing settles).
        let settle = if beta > 0.0 {
            (SATURATION / beta) * SETTLE_PAD_UP
        } else {
            f64::INFINITY
        };
        let n = self.state.len();
        let mut changed = 0;
        let mut i = 0;
        while i < n {
            // Settled scan: a whole run of settled spins — for each of
            // which the old kernel would decide "keep, no draw" — is
            // skipped with one blocked multiply-compare per spin
            // ([`settled_run`]). Never-saturating spins can never pass the
            // test (their field bound sits below `SATURATION / β`), so
            // they always stop the scan.
            let run = settled_run(&self.local_fields[i..n], &self.spins_f[i..n], settle);
            i += run;
            // Then a run of *unsettled* spins — the hot knapsack slack bits
            // sit on consecutive indices, so deciding them in one tight
            // loop (one settled re-test per spin, fields re-read after any
            // flip) avoids re-entering the scan per decision.
            while i < n {
                let f = self.local_fields[i];
                if f * self.spins_f[i] >= settle {
                    break;
                }
                // The three-tier decision (see the type docs): spins whose
                // precomputed drive bound can reach saturation at this β
                // run the exact compares; never-saturating spins — the hot
                // regime's majority — go straight to the drawn bracket
                // decision. Both replay the exact kernel bit-for-bit.
                let drive = beta * f;
                let new_up = if beta * self.drive_bounds[i] * CLASS_PAD >= SATURATION {
                    if drive >= SATURATION {
                        true
                    } else if drive <= -SATURATION {
                        false
                    } else {
                        gibbs_decision(drive, noise.noise_symmetric())
                    }
                } else {
                    gibbs_decision(drive, noise.noise_symmetric())
                };
                if new_up != (self.spins_f[i] > 0.0) {
                    self.apply_flip(model, i);
                    changed += 1;
                }
                i += 1;
            }
        }
        changed
    }

    /// The pre-bracket reference Gibbs sweep: exact `tanh` plus one noise
    /// draw on every unsaturated spin, one global saturation short-circuit —
    /// the kernel [`PbitMachine::sweep`] replaced and must replay
    /// bit-for-bit.
    ///
    /// Kept as the **oracle** for the bracket-kernel replay proptests and
    /// as the exact-tanh baseline of the hot-regime benches; never called
    /// by production paths.
    #[doc(hidden)]
    pub fn sweep_exact_oracle(
        &mut self,
        model: &IsingModel,
        beta: f64,
        rng: &mut ChaCha8Rng,
    ) -> usize {
        self.sweep_exact_with(model, beta, rng)
    }

    /// [`PbitMachine::sweep_exact_oracle`] drawing from a block-buffered
    /// [`NoiseSource`] — the oracle counterpart of
    /// [`PbitMachine::sweep_buffered`].
    #[doc(hidden)]
    pub fn sweep_exact_oracle_buffered(
        &mut self,
        model: &IsingModel,
        beta: f64,
        noise: &mut NoiseSource,
    ) -> usize {
        self.sweep_exact_with(model, beta, noise)
    }

    fn sweep_exact_with<N: SweepNoise>(
        &mut self,
        model: &IsingModel,
        beta: f64,
        noise: &mut N,
    ) -> usize {
        assert_eq!(self.state.len(), model.len(), "state length mismatch");
        let mut changed = 0;
        for i in 0..self.state.len() {
            let drive = beta * self.local_fields[i];
            let new_up = if drive >= SATURATION {
                true
            } else if drive <= -SATURATION {
                false
            } else {
                let activation = drive.tanh();
                let noise: f64 = noise.noise_symmetric();
                activation + noise >= 0.0
            };
            if new_up != (self.spins_f[i] > 0.0) {
                self.apply_flip(model, i);
                changed += 1;
            }
        }
        changed
    }

    /// One Metropolis sweep: sequentially proposes a flip of every spin and
    /// accepts with probability `min(1, exp(-β ΔH))`.
    ///
    /// This is the classic single-flip dynamics of digital annealers (and of
    /// the PT-DA baseline's hardware), provided alongside the p-bit Gibbs
    /// rule of [`PbitMachine::sweep`] so the two chains can be compared on
    /// identical models. Both sample the same Boltzmann distribution
    /// (eq. 11) in equilibrium.
    ///
    /// Returns the number of spins that changed.
    ///
    /// # Panics
    ///
    /// Panics if the machine was built for a different model size.
    pub fn metropolis_sweep(
        &mut self,
        model: &IsingModel,
        beta: f64,
        rng: &mut ChaCha8Rng,
    ) -> usize {
        self.metropolis_sweep_with(model, beta, rng)
    }

    /// [`PbitMachine::metropolis_sweep`] drawing its accept tests from a
    /// block-buffered [`NoiseSource`]. Bit-identical to the per-decision
    /// path on the same stream.
    ///
    /// # Panics
    ///
    /// Panics if the machine was built for a different model size.
    pub fn metropolis_sweep_buffered(
        &mut self,
        model: &IsingModel,
        beta: f64,
        noise: &mut NoiseSource,
    ) -> usize {
        self.metropolis_sweep_with(model, beta, noise)
    }

    fn metropolis_sweep_with<N: SweepNoise>(
        &mut self,
        model: &IsingModel,
        beta: f64,
        noise: &mut N,
    ) -> usize {
        assert_eq!(self.state.len(), model.len(), "state length mismatch");
        let mut changed = 0;
        for i in 0..self.state.len() {
            let delta = 2.0 * self.spins_f[i] * self.local_fields[i];
            let accept = delta <= 0.0 || noise.noise_unit() < (-beta * delta).exp();
            if accept {
                self.apply_flip(model, i);
                changed += 1;
            }
        }
        changed
    }

    /// One deterministic greedy sweep: flips each spin whose flip strictly
    /// lowers the energy (the β → ∞ limit without noise).
    ///
    /// Returns the number of spins that changed.
    pub fn greedy_sweep(&mut self, model: &IsingModel) -> usize {
        assert_eq!(self.state.len(), model.len(), "state length mismatch");
        let mut changed = 0;
        for i in 0..self.state.len() {
            let delta = 2.0 * self.spins_f[i] * self.local_fields[i];
            if delta < 0.0 {
                self.apply_flip(model, i);
                changed += 1;
            }
        }
        changed
    }
}

/// Length of the leading *settled run*: the largest `k` such that
/// `fields[j] · spins[j] ≥ thresh` for every `j < k`.
///
/// The hot loop of the settled scan: whole blocks of 8 spins are tested
/// with a branchless compare-count the compiler keeps in vector registers
/// (the same shape as the batched engine's lane filter), and only the
/// breaking block is refined element-wise. Purely a read-only count — the
/// caller decides the first unsettled spin through the full kernel, so
/// blocking can never change a decision or a draw.
#[inline(always)]
pub(crate) fn settled_run(fields: &[f64], spins: &[f64], thresh: f64) -> usize {
    const BLOCK: usize = 8;
    let n = fields.len();
    let mut i = 0;
    while i + BLOCK <= n {
        let f: &[f64; BLOCK] = fields[i..i + BLOCK].try_into().expect("blocked slice");
        let s: &[f64; BLOCK] = spins[i..i + BLOCK].try_into().expect("blocked slice");
        let mut settled = 0u32;
        for lane in 0..BLOCK {
            settled += u32::from(f[lane] * s[lane] >= thresh);
        }
        if settled != BLOCK as u32 {
            break;
        }
        i += BLOCK;
    }
    while i < n && fields[i] * spins[i] >= thresh {
        i += 1;
    }
    i
}

/// The dense flip propagation `I += delta · row` as a plain zip loop the
/// compiler auto-vectorizes (an A/B against a manually 8-blocked version
/// measured no slower — the pass is memory-bound). Elementwise, so the
/// results are bit-identical to any blocking. Shared with the batched
/// engine's width-1 serial path ([`crate::ReplicaBatch`]).
#[inline]
pub(crate) fn propagate_dense(fields: &mut [f64], row: &[f64], delta: f64) {
    for (f, &jij) in fields.iter_mut().zip(row) {
        *f += jij * delta;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::new_rng;
    use saim_ising::QuboBuilder;

    fn frustrated_model() -> IsingModel {
        let mut b = QuboBuilder::new(4);
        b.add_pair(0, 1, 2.0).unwrap();
        b.add_pair(1, 2, -1.5).unwrap();
        b.add_pair(2, 3, 1.0).unwrap();
        b.add_linear(0, -1.0).unwrap();
        b.add_linear(3, 0.5).unwrap();
        b.build().to_ising()
    }

    #[test]
    fn incremental_energy_matches_full_recompute() {
        let model = frustrated_model();
        let mut rng = new_rng(9);
        let mut machine = PbitMachine::new(&model, &mut rng);
        for sweep in 0..200 {
            machine.sweep(&model, 0.05 * sweep as f64, &mut rng);
            let full = model.energy(machine.state());
            assert!(
                (machine.energy() - full).abs() < 1e-9,
                "drift at sweep {sweep}: {} vs {full}",
                machine.energy()
            );
        }
    }

    #[test]
    fn incremental_fields_match_model() {
        let model = frustrated_model();
        let mut rng = new_rng(11);
        let mut machine = PbitMachine::new(&model, &mut rng);
        for _ in 0..50 {
            machine.sweep(&model, 1.0, &mut rng);
        }
        for i in 0..model.len() {
            let expected = model.local_field(machine.state(), i);
            assert!((machine.local_field(i) - expected).abs() < 1e-9);
        }
    }

    #[test]
    fn beta_zero_is_unbiased_coin() {
        // At β = 0 the activation is 0 and each p-bit is an unbiased coin.
        let model = frustrated_model();
        let mut rng = new_rng(5);
        let mut machine = PbitMachine::new(&model, &mut rng);
        let mut ups = 0usize;
        let sweeps = 2000;
        for _ in 0..sweeps {
            machine.sweep(&model, 0.0, &mut rng);
            ups += machine.state().count_up();
        }
        let frac = ups as f64 / (sweeps * model.len()) as f64;
        assert!((frac - 0.5).abs() < 0.02, "fraction up = {frac}");
    }

    #[test]
    fn high_beta_finds_ground_state_of_simple_model() {
        // Single strong field: ground state is spin 0 up.
        let mut b = QuboBuilder::new(1);
        b.add_linear(0, -2.0).unwrap();
        let model = b.build().to_ising();
        let mut rng = new_rng(3);
        let mut machine = PbitMachine::new(&model, &mut rng);
        for _ in 0..100 {
            machine.sweep(&model, 20.0, &mut rng);
        }
        assert_eq!(machine.state().value(0), 1);
    }

    #[test]
    fn greedy_sweep_never_increases_energy() {
        let model = frustrated_model();
        let mut rng = new_rng(17);
        let mut machine = PbitMachine::new(&model, &mut rng);
        let mut prev = machine.energy();
        while machine.greedy_sweep(&model) > 0 {
            assert!(machine.energy() <= prev + 1e-12);
            prev = machine.energy();
        }
        // fixed point: no single flip improves
        for i in 0..model.len() {
            assert!(model.delta_energy(machine.state(), i) >= -1e-12);
        }
    }

    /// A ring model big and sparse enough that `to_ising` stores it as CSR.
    fn sparse_ring_model(n: usize) -> IsingModel {
        let mut b = QuboBuilder::new(n);
        for i in 0..n {
            b.add_pair(i, (i + 1) % n, if i % 2 == 0 { 1.0 } else { -1.5 })
                .unwrap();
            b.add_linear(i, 0.3 - 0.1 * (i % 5) as f64).unwrap();
        }
        b.build().to_ising()
    }

    #[test]
    fn low_density_models_sweep_over_csr_and_keep_books() {
        let model = sparse_ring_model(80);
        assert!(
            matches!(model.couplings(), Couplings::Sparse(_)),
            "a large ring model should convert to CSR couplings"
        );
        let mut rng = new_rng(13);
        let mut machine = PbitMachine::new(&model, &mut rng);
        for sweep in 0..100 {
            machine.sweep(&model, 0.1 * sweep as f64, &mut rng);
        }
        assert!(
            (machine.energy() - model.energy(machine.state())).abs() < 1e-9,
            "energy drifted on the CSR path"
        );
        for i in 0..model.len() {
            let expected = model.local_field(machine.state(), i);
            assert!(
                (machine.local_field(i) - expected).abs() < 1e-9,
                "field {i}"
            );
        }
    }

    #[test]
    fn small_or_dense_models_stay_on_dense_couplings() {
        let small = sparse_ring_model(8); // below the CSR size cut
        assert!(matches!(small.couplings(), Couplings::Dense(_)));
        let dense = frustrated_model(); // tiny and dense
        assert!(matches!(dense.couplings(), Couplings::Dense(_)));
    }

    #[test]
    fn buffered_sweeps_replay_the_per_decision_path() {
        // the block-buffered noise source must not change a single decision:
        // same stream, same trajectory, bit-identical energies
        let model = frustrated_model();
        let mut rng_a = new_rng(8);
        let mut a = PbitMachine::new(&model, &mut rng_a);
        let mut rng_b = new_rng(8);
        let b_init = PbitMachine::new(&model, &mut rng_b);
        let mut b = b_init;
        let mut noise = NoiseSource::new(rng_b);
        for sweep in 0..150 {
            let beta = 0.05 * sweep as f64;
            if sweep % 3 == 2 {
                a.metropolis_sweep(&model, beta, &mut rng_a);
                b.metropolis_sweep_buffered(&model, beta, &mut noise);
            } else {
                a.sweep(&model, beta, &mut rng_a);
                b.sweep_buffered(&model, beta, &mut noise);
            }
            assert_eq!(a.state(), b.state(), "sweep {sweep}");
            assert_eq!(a.energy().to_bits(), b.energy().to_bits(), "sweep {sweep}");
        }
    }

    #[test]
    fn reset_to_matches_fresh_construction() {
        let model = frustrated_model();
        let mut rng = new_rng(6);
        let mut machine = PbitMachine::new(&model, &mut rng);
        for _ in 0..20 {
            machine.sweep(&model, 1.0, &mut rng);
        }
        let target = SpinState::from_values(&[1, -1, -1, 1]);
        machine.reset_to(&model, &target);
        let fresh = PbitMachine::with_state(&model, target.clone());
        assert_eq!(machine.state(), fresh.state());
        assert_eq!(machine.energy().to_bits(), fresh.energy().to_bits());
        for i in 0..model.len() {
            assert_eq!(
                machine.local_field(i).to_bits(),
                fresh.local_field(i).to_bits()
            );
        }
        // flips survive a reset (they count the machine's lifetime work)
        assert!(machine.flips() > 0);
    }

    #[test]
    fn resync_after_field_change() {
        let mut model = frustrated_model();
        let mut rng = new_rng(21);
        let mut machine = PbitMachine::new(&model, &mut rng);
        machine.sweep(&model, 1.0, &mut rng);
        model.fields_mut()[2] += 3.0;
        machine.resync(&model);
        assert!((machine.energy() - model.energy(machine.state())).abs() < 1e-12);
        for i in 0..model.len() {
            assert!((machine.local_field(i) - model.local_field(machine.state(), i)).abs() < 1e-12);
        }
    }

    #[test]
    fn randomize_changes_state_and_keeps_books() {
        let model = frustrated_model();
        let mut rng = new_rng(2);
        let mut machine = PbitMachine::new(&model, &mut rng);
        machine.randomize(&model, &mut rng);
        assert!((machine.energy() - model.energy(machine.state())).abs() < 1e-12);
    }

    #[test]
    fn metropolis_matches_gibbs_equilibrium_on_one_spin() {
        // both chains must converge to P(up) = (1 + tanh(βh)) / 2
        let mut b = QuboBuilder::new(1);
        b.add_linear(0, -1.0).unwrap();
        let model = b.build().to_ising();
        let h = model.fields()[0];
        let beta = 0.9;
        let expected = (beta * h).tanh() / 2.0 + 0.5;
        for use_metropolis in [false, true] {
            let mut rng = new_rng(55);
            let mut machine = PbitMachine::new(&model, &mut rng);
            let mut ups = 0usize;
            let sweeps = 40_000;
            for _ in 0..sweeps {
                if use_metropolis {
                    machine.metropolis_sweep(&model, beta, &mut rng);
                } else {
                    machine.sweep(&model, beta, &mut rng);
                }
                ups += usize::from(machine.state().value(0) == 1);
            }
            let p_up = ups as f64 / sweeps as f64;
            assert!(
                (p_up - expected).abs() < 0.02,
                "metropolis={use_metropolis}: p_up = {p_up}, expected {expected}"
            );
        }
    }

    #[test]
    fn metropolis_keeps_energy_books() {
        let model = frustrated_model();
        let mut rng = new_rng(77);
        let mut machine = PbitMachine::new(&model, &mut rng);
        for sweep in 0..100 {
            machine.metropolis_sweep(&model, 0.1 * sweep as f64, &mut rng);
            assert!(
                (machine.energy() - model.energy(machine.state())).abs() < 1e-9,
                "drift at sweep {sweep}"
            );
        }
    }

    #[test]
    fn metropolis_at_high_beta_descends() {
        let model = frustrated_model();
        let mut rng = new_rng(31);
        let mut machine = PbitMachine::new(&model, &mut rng);
        let start = machine.energy();
        for _ in 0..100 {
            machine.metropolis_sweep(&model, 50.0, &mut rng);
        }
        assert!(machine.energy() <= start + 1e-9);
        // and the endpoint is a local minimum up to rare accepted uphill moves
        let uphill = (0..model.len())
            .filter(|&i| model.delta_energy(machine.state(), i) < -1e-9)
            .count();
        assert_eq!(uphill, 0, "still has strictly improving flips");
    }

    #[test]
    fn bracket_kernel_replays_exact_oracle() {
        // the three-tier kernel must be bit-identical to the pre-bracket
        // exact-tanh kernel across the whole hot regime, dense and CSR
        for model in [frustrated_model(), sparse_ring_model(80)] {
            let mut rng_a = new_rng(14);
            let mut a = PbitMachine::new(&model, &mut rng_a);
            let mut rng_b = new_rng(14);
            let mut b = PbitMachine::new(&model, &mut rng_b);
            for sweep in 0..300 {
                let beta = 0.05 * sweep as f64;
                let ca = a.sweep(&model, beta, &mut rng_a);
                let cb = b.sweep_exact_oracle(&model, beta, &mut rng_b);
                assert_eq!(ca, cb, "changed count at sweep {sweep}");
                assert_eq!(a.state(), b.state(), "sweep {sweep}");
                assert_eq!(a.energy().to_bits(), b.energy().to_bits(), "sweep {sweep}");
                assert_eq!(a.flips(), b.flips(), "sweep {sweep}");
            }
        }
    }

    #[test]
    fn classification_marks_weak_spins_never_saturating() {
        // spin 0 carries a drive bound far past SATURATION at β = 1, spin 1
        // one far below it
        let mut b = QuboBuilder::new(2);
        b.add_linear(0, -100.0).unwrap();
        b.add_linear(1, -0.1).unwrap();
        let model = b.build().to_ising();
        let mut rng = new_rng(1);
        let mut machine = PbitMachine::new(&model, &mut rng);
        machine.sweep(&model, 1.0, &mut rng);
        assert_eq!(machine.drive_bounds, model.drive_bounds());
        let class = |beta: f64, i: usize| beta * machine.drive_bounds[i] * CLASS_PAD >= SATURATION;
        assert!(class(1.0, 0), "strong spin must keep the sat tests");
        assert!(!class(1.0, 1), "weak spin can never saturate");
        // β = 0: nothing saturates
        assert!(!class(0.0, 0) && !class(0.0, 1));
    }

    #[test]
    fn resync_refreshes_drive_bounds() {
        let mut model = frustrated_model();
        let mut rng = new_rng(2);
        let mut machine = PbitMachine::new(&model, &mut rng);
        machine.sweep(&model, 1.0, &mut rng);
        model.fields_mut()[2] += 50.0;
        machine.resync(&model);
        machine.sweep(&model, 1.0, &mut rng);
        assert_eq!(machine.drive_bounds, model.drive_bounds());
    }

    #[test]
    fn settled_run_counts_leading_settled_prefix() {
        // blocked and element-wise refinement must agree with the naive
        // definition across block boundaries
        let thresh = 2.0;
        for break_at in [0usize, 1, 7, 8, 9, 15, 16, 20] {
            let n = 21;
            let fields: Vec<f64> = (0..n)
                .map(|i| if i == break_at { 1.0 } else { 3.0 })
                .collect();
            let spins = vec![1.0; n];
            assert_eq!(settled_run(&fields, &spins, thresh), break_at, "{break_at}");
        }
        assert_eq!(settled_run(&[], &[], 1.0), 0);
        assert_eq!(settled_run(&[5.0; 19], &[1.0; 19], 2.0), 19);
    }

    #[test]
    fn boltzmann_ratio_on_two_state_system() {
        // One spin, field h: P(up)/P(down) should approach exp(2βh).
        let mut b = QuboBuilder::new(1);
        b.add_linear(0, -1.0).unwrap(); // ising field 0.5 on the spin
        let model = b.build().to_ising();
        let h = model.fields()[0];
        let beta = 1.2;
        let mut rng = new_rng(33);
        let mut machine = PbitMachine::new(&model, &mut rng);
        let mut ups = 0usize;
        let sweeps = 40_000;
        for _ in 0..sweeps {
            machine.sweep(&model, beta, &mut rng);
            if machine.state().value(0) == 1 {
                ups += 1;
            }
        }
        let p_up = ups as f64 / sweeps as f64;
        let expected = (beta * h).tanh() / 2.0 + 0.5;
        assert!(
            (p_up - expected).abs() < 0.02,
            "p_up = {p_up}, expected {expected}"
        );
    }
}
