use crate::pbit::PbitMachine;
use crate::rng::new_rng;
use crate::solver::{IsingSolver, SolveOutcome};
use rand::Rng;
use rand_chacha::ChaCha8Rng;
use saim_ising::IsingModel;
use serde::{Deserialize, Serialize};

/// Configuration of the parallel-tempering solver.
///
/// Defaults follow the PT-DA baseline the paper benchmarks against
/// (\[17\]: 26 replicas on Fujitsu's Digital Annealer).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PtConfig {
    /// Number of replicas in the temperature ladder.
    pub replicas: usize,
    /// Smallest inverse temperature (hottest replica).
    pub beta_min: f64,
    /// Largest inverse temperature (coldest replica).
    pub beta_max: f64,
    /// Monte Carlo sweeps per replica per solve call.
    pub sweeps: usize,
    /// Replica-exchange attempts happen every `swap_interval` sweeps.
    pub swap_interval: usize,
}

impl Default for PtConfig {
    fn default() -> Self {
        PtConfig {
            replicas: 26,
            beta_min: 0.1,
            beta_max: 10.0,
            sweeps: 1000,
            swap_interval: 10,
        }
    }
}

impl PtConfig {
    /// Validates the configuration.
    ///
    /// # Panics
    ///
    /// Panics if any count is zero or the β range is not positive-increasing.
    fn validate(&self) {
        assert!(
            self.replicas >= 2,
            "parallel tempering needs at least two replicas"
        );
        assert!(self.sweeps > 0, "sweeps must be positive");
        assert!(self.swap_interval > 0, "swap interval must be positive");
        assert!(
            self.beta_min > 0.0 && self.beta_min < self.beta_max,
            "require 0 < beta_min < beta_max"
        );
    }

    /// The geometric β ladder over the replicas.
    pub fn ladder(&self) -> Vec<f64> {
        let r = self.replicas;
        (0..r)
            .map(|k| {
                let frac = if r == 1 {
                    1.0
                } else {
                    k as f64 / (r - 1) as f64
                };
                self.beta_min * (self.beta_max / self.beta_min).powf(frac)
            })
            .collect()
    }
}

/// Parallel tempering (replica exchange) on the p-bit substrate.
///
/// `R` replicas sample the same model at a geometric ladder of inverse
/// temperatures; every `swap_interval` sweeps, adjacent replicas propose a
/// state exchange accepted with the Metropolis probability
/// `min(1, exp(Δβ · ΔE))`. Hot replicas roam; cold replicas refine — the
/// standard remedy for the rugged landscapes that large penalty terms create,
/// and the algorithm run on Fujitsu's Digital Annealer in the paper's
/// comparison \[17\].
///
/// ```
/// use saim_ising::QuboBuilder;
/// use saim_machine::{IsingSolver, ParallelTempering, PtConfig};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut b = QuboBuilder::new(3);
/// for i in 0..3 { b.add_linear(i, -1.0)?; }
/// let model = b.build().to_ising();
/// let cfg = PtConfig { replicas: 4, sweeps: 100, ..PtConfig::default() };
/// let out = ParallelTempering::new(cfg, 11).solve(&model);
/// assert!((out.best_energy - (-3.0)).abs() < 1e-9);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct ParallelTempering {
    config: PtConfig,
    rng: ChaCha8Rng,
    swap_attempts: u64,
    swap_accepts: u64,
}

impl ParallelTempering {
    /// Creates a solver with the given configuration and seed.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid (see [`PtConfig`]).
    pub fn new(config: PtConfig, seed: u64) -> Self {
        config.validate();
        ParallelTempering {
            config,
            rng: new_rng(seed),
            swap_attempts: 0,
            swap_accepts: 0,
        }
    }

    /// The configuration in use.
    pub fn config(&self) -> PtConfig {
        self.config
    }

    /// Fraction of accepted replica exchanges so far (NaN before any attempt).
    pub fn swap_acceptance(&self) -> f64 {
        self.swap_accepts as f64 / self.swap_attempts as f64
    }
}

impl IsingSolver for ParallelTempering {
    fn solve(&mut self, model: &IsingModel) -> SolveOutcome {
        let ladder = self.config.ladder();
        let mut replicas: Vec<PbitMachine> = (0..self.config.replicas)
            .map(|_| PbitMachine::new(model, &mut self.rng))
            .collect();
        let mut best = replicas[0].state().clone();
        let mut best_energy = replicas[0].energy();

        for sweep in 0..self.config.sweeps {
            for (machine, &beta) in replicas.iter_mut().zip(&ladder) {
                machine.sweep(model, beta, &mut self.rng);
                if machine.energy() < best_energy {
                    best_energy = machine.energy();
                    best = machine.state().clone();
                }
            }
            if (sweep + 1) % self.config.swap_interval == 0 {
                // alternate even/odd pairs to keep proposals independent
                let parity = (sweep / self.config.swap_interval) % 2;
                let mut k = parity;
                while k + 1 < replicas.len() {
                    self.swap_attempts += 1;
                    let delta_beta = ladder[k] - ladder[k + 1];
                    let delta_e = replicas[k].energy() - replicas[k + 1].energy();
                    let accept_ln = delta_beta * delta_e;
                    if accept_ln >= 0.0 || self.rng.gen::<f64>() < accept_ln.exp() {
                        replicas.swap(k, k + 1);
                        self.swap_accepts += 1;
                    }
                    k += 2;
                }
            }
        }
        // the coldest replica is the machine's readout
        let cold = replicas.last().expect("at least two replicas");
        SolveOutcome {
            last: cold.state().clone(),
            last_energy: cold.energy(),
            best,
            best_energy,
            mcs: (self.config.sweeps * self.config.replicas) as u64,
        }
    }

    fn mcs_per_solve(&self, _n: usize) -> u64 {
        (self.config.sweeps * self.config.replicas) as u64
    }

    fn name(&self) -> &'static str {
        "parallel tempering (p-bit)"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use saim_ising::QuboBuilder;

    fn rugged_model() -> IsingModel {
        // frustrated couplings + fields: several local minima
        let mut b = QuboBuilder::new(8);
        for i in 0..8 {
            for j in (i + 1)..8 {
                let sign = if (i + j) % 3 == 0 { 1.0 } else { -0.5 };
                b.add_pair(i, j, sign).unwrap();
            }
            b.add_linear(i, if i % 2 == 0 { -0.7 } else { 0.3 })
                .unwrap();
        }
        b.build().to_ising()
    }

    fn brute_min(model: &IsingModel) -> f64 {
        (0u64..(1 << model.len()))
            .map(|m| model.energy(&saim_ising::BinaryState::from_mask(m, model.len()).to_spins()))
            .fold(f64::INFINITY, f64::min)
    }

    #[test]
    fn finds_ground_state_of_rugged_model() {
        let model = rugged_model();
        let opt = brute_min(&model);
        let cfg = PtConfig {
            replicas: 8,
            sweeps: 400,
            ..PtConfig::default()
        };
        let out = ParallelTempering::new(cfg, 5).solve(&model);
        assert!(
            (out.best_energy - opt).abs() < 1e-9,
            "best {} vs opt {opt}",
            out.best_energy
        );
    }

    #[test]
    fn ladder_is_geometric_and_monotone() {
        let cfg = PtConfig {
            replicas: 5,
            beta_min: 0.2,
            beta_max: 20.0,
            ..PtConfig::default()
        };
        let ladder = cfg.ladder();
        assert_eq!(ladder.len(), 5);
        assert!((ladder[0] - 0.2).abs() < 1e-12);
        assert!((ladder[4] - 20.0).abs() < 1e-12);
        for w in ladder.windows(2) {
            assert!(w[1] > w[0]);
        }
        // constant ratio
        let r0 = ladder[1] / ladder[0];
        let r1 = ladder[3] / ladder[2];
        assert!((r0 - r1).abs() < 1e-9);
    }

    #[test]
    fn swaps_do_occur() {
        let model = rugged_model();
        let cfg = PtConfig {
            replicas: 6,
            sweeps: 200,
            ..PtConfig::default()
        };
        let mut pt = ParallelTempering::new(cfg, 1);
        let _ = pt.solve(&model);
        assert!(pt.swap_attempts > 0);
        assert!(
            pt.swap_acceptance() > 0.0,
            "no replica exchange ever accepted"
        );
    }

    #[test]
    fn mcs_counts_all_replicas() {
        let cfg = PtConfig {
            replicas: 4,
            sweeps: 50,
            ..PtConfig::default()
        };
        let mut pt = ParallelTempering::new(cfg, 2);
        let model = rugged_model();
        let out = pt.solve(&model);
        assert_eq!(out.mcs, 200);
        assert_eq!(pt.mcs_per_solve(8), 200);
    }

    #[test]
    fn default_matches_ptda_reference() {
        assert_eq!(PtConfig::default().replicas, 26);
    }

    #[test]
    #[should_panic(expected = "at least two replicas")]
    fn rejects_single_replica() {
        let cfg = PtConfig {
            replicas: 1,
            ..PtConfig::default()
        };
        let _ = ParallelTempering::new(cfg, 0);
    }
}
