//! Deterministic parallel tempering (replica exchange) on the p-bit machine.
//!
//! `R` replicas sample the same model at a geometric ladder of inverse
//! temperatures. The run is organised in *rounds* of `swap_interval` sweeps:
//! within a round every ladder slot sweeps independently, between rounds
//! adjacent slots propose a state exchange accepted with the Metropolis
//! probability `min(1, exp(Δβ · ΔE))`. Hot replicas roam; cold replicas
//! refine — the standard remedy for the rugged landscapes that large penalty
//! terms create, and the algorithm run on Fujitsu's Digital Annealer in the
//! paper's comparison \[17\].
//!
//! # Batched parallel execution and determinism
//!
//! Rounds are embarrassingly parallel across the ladder. Adjacent slots are
//! grouped — eight per group — into one structure-of-arrays
//! [`ReplicaBatch`], so within a group every coupling-row pass of a sweep
//! serves all member slots at once, and each round's group sweeps fan out
//! over one **persistent per-solve worker pool**
//! ([`parallel::parallel_rounds`]): the pool spawns once, rounds open and
//! close on a barrier, and the serial exchange phase runs between rounds
//! with every worker parked — a swap cadence of a few microseconds of work
//! per slot would be swamped by per-round thread spawns otherwise. Results
//! are **bit-identical for any thread count** — and identical to the
//! one-machine-per-slot engine, by the batch's lane-invariance contract —
//! because no random stream is ever shared between concurrently-running
//! slots:
//!
//! - **RNG-stream layout.** Each `solve` call is a *batch*; batch `b` of a
//!   solver seeded `s` derives `batch_seed = derive_seed(s, b)`. Ladder slot
//!   `k` (0 = hottest … R−1 = coldest) then owns the SplitMix64-derived
//!   stream `derive_seed(batch_seed, k)`, which draws its initial state and
//!   every sweep at that temperature. Stream index `R` —
//!   `derive_seed(batch_seed, R)` — is the dedicated **swap stream**,
//!   consumed only by the serial exchange phase between rounds.
//! - **Swap schedule.** Round `t` (0-based) attempts exchanges on the fixed
//!   pair set `{(k, k+1) : k ≡ t (mod 2)}` in ascending `k` — even pairs on
//!   even rounds, odd pairs on odd rounds — so proposals within a round are
//!   disjoint and the accept decisions are a pure function of slot energies
//!   and the swap stream, never of scheduling. Exchanges happen strictly
//!   *between* rounds: none follows the final round, so the readout is the
//!   coldest slot's state straight after its last sweeps.
//! - **Exchange semantics.** An accepted swap exchanges the *replica
//!   payloads* (spin state, local fields, energy, flip count — batch lanes
//!   here, whole machines in a serial replay) between the two slots;
//!   streams, temperatures and best-so-far tracking stay attached to their
//!   ladder slots.
//!
//! A serial replay of the same layout (sweep slots `0..R` in order each
//! round, then apply the swap phase) reproduces the parallel result exactly;
//! `tests/determinism.rs` asserts both properties.
//!
//! ```
//! use saim_ising::QuboBuilder;
//! use saim_machine::{IsingSolver, ParallelTempering, PtConfig};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut b = QuboBuilder::new(3);
//! for i in 0..3 { b.add_linear(i, -1.0)?; }
//! let model = b.build().to_ising();
//! let cfg = PtConfig { replicas: 4, sweeps: 100, ..PtConfig::default() };
//! let out = ParallelTempering::new(cfg, 11).solve(&model);
//! assert!((out.best_energy - (-3.0)).abs() < 1e-9);
//! # Ok(())
//! # }
//! ```

use crate::batch::{LaneBests, ReplicaBatch};
use crate::checkpoint::{
    BestState, CheckpointError, Controlled, LaneState, OutcomeKind, PtState, RngState,
    RunController,
};
use crate::parallel;
use crate::rng::{derive_seed, new_rng};
use crate::solver::{IsingSolver, SolveOutcome};
use rand::Rng;
use rand_chacha::ChaCha8Rng;
use saim_ising::{IsingModel, SpinState};
use serde::{Deserialize, Serialize};
use std::sync::Mutex;

/// Cap on ladder slots advanced together per structure-of-arrays batch:
/// within a group every coupling-row pass is shared ([`ReplicaBatch`]), and
/// eight f64 lanes fill one AVX-512 register while keeping the spin/field
/// planes cache-resident. The actual group width adapts downward so the
/// per-round fan-out still covers the worker pool (more workers → narrower
/// groups, never below one slot); lane trajectories are
/// batch-width-invariant, so the grouping affects wall-clock only — results
/// match the one-machine-per-slot engine bit for bit for every thread
/// count, as `tests/determinism.rs` asserts.
const MAX_GROUP_WIDTH: usize = 8;

/// Configuration of the parallel-tempering solver.
///
/// Defaults follow the PT-DA baseline the paper benchmarks against
/// (\[17\]: 26 replicas on Fujitsu's Digital Annealer).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PtConfig {
    /// Number of replicas in the temperature ladder.
    pub replicas: usize,
    /// Smallest inverse temperature (hottest replica).
    pub beta_min: f64,
    /// Largest inverse temperature (coldest replica).
    pub beta_max: f64,
    /// Monte Carlo sweeps per replica per solve call.
    pub sweeps: usize,
    /// Replica-exchange attempts happen between rounds of `swap_interval`
    /// sweeps (never after the final round).
    pub swap_interval: usize,
    /// Worker threads for the per-round fan-out over slot groups (eight
    /// adjacent ladder slots share one batched sweep); `0` means all
    /// available cores. The thread count affects wall-clock only, never
    /// results.
    pub threads: usize,
}

impl Default for PtConfig {
    fn default() -> Self {
        PtConfig {
            replicas: 26,
            beta_min: 0.1,
            beta_max: 10.0,
            sweeps: 1000,
            swap_interval: 10,
            threads: 0,
        }
    }
}

impl PtConfig {
    /// Validates the configuration.
    ///
    /// # Panics
    ///
    /// Panics if any count is zero or the β range is not positive-increasing.
    fn validate(&self) {
        assert!(
            self.replicas >= 2,
            "parallel tempering needs at least two replicas"
        );
        assert!(self.sweeps > 0, "sweeps must be positive");
        assert!(self.swap_interval > 0, "swap interval must be positive");
        assert!(
            self.beta_min > 0.0 && self.beta_min < self.beta_max,
            "require 0 < beta_min < beta_max"
        );
    }

    /// The geometric β ladder over the replicas.
    pub fn ladder(&self) -> Vec<f64> {
        let r = self.replicas;
        (0..r)
            .map(|k| {
                let frac = if r == 1 {
                    1.0
                } else {
                    k as f64 / (r - 1) as f64
                };
                self.beta_min * (self.beta_max / self.beta_min).powf(frac)
            })
            .collect()
    }
}

/// One batched group of adjacent ladder slots: the slots' replicas in
/// structure-of-arrays lanes (lane `l` = slot `base + l`), their β
/// sub-ladder, and per-slot best tracking.
///
/// An exchange moves the replica payload (state, fields, energy, flips)
/// between lanes while each slot keeps its stream and its best — exactly
/// the machine-swap semantics of the serial engine.
struct PtGroup {
    batch: ReplicaBatch,
    /// β of each lane (`ladder[base..base + width]`).
    betas: Vec<f64>,
    bests: LaneBests,
}

impl PtGroup {
    /// Builds the group's batch once per solve; the batch computes the
    /// model's per-spin drive bounds at construction, so the three-tier
    /// decision kernel's classification is shared by every round (the
    /// ladder's fixed per-lane β costs no per-round rework). Width-1 groups
    /// — the narrow-group shape on many-core hosts — take the batch's
    /// serial sweep path, paying no structure-of-arrays overhead.
    fn new(model: &IsingModel, seeds: &[u64], betas: Vec<f64>) -> Self {
        let batch = ReplicaBatch::new(model, seeds);
        let bests = LaneBests::new(&batch);
        PtGroup {
            batch,
            betas,
            bests,
        }
    }

    /// Runs `sweeps` batched Monte Carlo sweeps, each lane at its own β,
    /// tracking every slot's best after every sweep.
    fn run_round(&mut self, model: &IsingModel, sweeps: usize) {
        for _ in 0..sweeps {
            self.batch.sweep(model, &self.betas);
            self.bests.update(&self.batch);
        }
    }
}

/// Parallel tempering with deterministic round-parallel sweeps.
///
/// See the [module docs](self) for the RNG-stream layout, the fixed even/odd
/// swap schedule, and the thread-count-invariance guarantee. Consecutive
/// [`IsingSolver::solve`] calls use fresh stream batches, exactly like
/// consecutive runs of a serial solver.
#[derive(Debug, Clone)]
pub struct ParallelTempering {
    config: PtConfig,
    root_seed: u64,
    /// Batches issued so far: each `solve` call derives a fresh seed block.
    batches: u64,
    swap_attempts: u64,
    swap_accepts: u64,
}

impl ParallelTempering {
    /// Creates a solver with the given configuration and root seed.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid (see [`PtConfig`]).
    pub fn new(config: PtConfig, seed: u64) -> Self {
        config.validate();
        ParallelTempering {
            config,
            root_seed: seed,
            batches: 0,
            swap_attempts: 0,
            swap_accepts: 0,
        }
    }

    /// The configuration in use.
    pub fn config(&self) -> PtConfig {
        self.config
    }

    /// The root seed ladder streams derive from.
    pub fn root_seed(&self) -> u64 {
        self.root_seed
    }

    /// The seed of ladder slot `slot` within batch `batch`; `slot ==
    /// replicas` is the swap stream. See the module docs for the layout.
    pub fn stream_seed(&self, batch: u64, slot: u64) -> u64 {
        derive_seed(derive_seed(self.root_seed, batch), slot)
    }

    /// Fraction of accepted replica exchanges so far (NaN before any attempt).
    pub fn swap_acceptance(&self) -> f64 {
        self.swap_accepts as f64 / self.swap_attempts as f64
    }

    /// Like [`IsingSolver::solve`] (which delegates here), but checking
    /// `ctrl` after every swap round. With an idle controller the outcome
    /// is bit-identical to `solve`.
    ///
    /// Rounds — `swap_interval` sweeps per slot — are this engine's natural
    /// stop boundary: the exchange phase runs with every worker parked, so
    /// the ladder is safe to snapshot right after it. The controller's
    /// `poll_interval` does not apply; every round boundary checks. A
    /// captured [`PtState`] records the round's swaps as already applied
    /// (`next_round` points past them) with the swap stream advanced
    /// accordingly.
    pub fn solve_controlled(
        &mut self,
        model: &IsingModel,
        ctrl: &RunController,
    ) -> Controlled<PtState> {
        let batch = self.batches;
        self.batches += 1;
        self.run(model, ctrl, batch, None)
            .expect("a fresh run validates no checkpoint")
    }

    /// Continues a checkpointed run from its [`PtState`]; the completed run
    /// is bit-identical to one that was never interrupted, at any thread
    /// count — slots are stored flat and regrouped under the resuming
    /// pool's own width (lane trajectories are batch-width-invariant).
    ///
    /// # Errors
    ///
    /// [`CheckpointError::Malformed`] when the recorded ladder does not
    /// match this solver's configuration or any slot image fails
    /// validation.
    pub fn resume_controlled(
        &mut self,
        model: &IsingModel,
        state: &PtState,
        ctrl: &RunController,
    ) -> Result<Controlled<PtState>, CheckpointError> {
        self.run(model, ctrl, state.batch_index, Some(state))
    }

    /// The controlled core shared by fresh solves and resumes.
    fn run(
        &mut self,
        model: &IsingModel,
        ctrl: &RunController,
        batch: u64,
        resume: Option<&PtState>,
    ) -> Result<Controlled<PtState>, CheckpointError> {
        let config = self.config;
        let r = config.replicas;
        let n = model.len();
        let ladder = config.ladder();

        // round lengths: swap_interval sweeps each, with a short final round
        // when the budget doesn't divide evenly. This is the absolute
        // schedule — a resume indexes into the same table.
        let mut lens = Vec::with_capacity(config.sweeps / config.swap_interval + 1);
        let mut done = 0usize;
        while done < config.sweeps {
            let len = config.swap_interval.min(config.sweeps - done);
            lens.push(len);
            done += len;
        }
        let rounds = lens.len();

        // Adjacent slots share a batch so every coupling-row pass serves the
        // whole group. The width adapts to the worker pool — narrower groups
        // when more workers are available, so the round fan-out still covers
        // every core — capped at MAX_GROUP_WIDTH for cache residency. Lane
        // trajectories are batch-width-invariant, so this is wall-clock
        // only. Group construction consumes only the member slots' own
        // streams, so building serially changes nothing.
        let workers = if config.threads == 0 {
            parallel::available_threads()
        } else {
            config.threads
        };
        let width = r.div_ceil(workers.max(1)).clamp(1, MAX_GROUP_WIDTH);
        let group_count = r.div_ceil(width);
        // slot k lives in group k / width, lane k % width
        let locate = |k: usize| (k / width, k % width);

        let (groups, mut swap_rng, start_round) = match resume {
            None => {
                let groups: Vec<Mutex<PtGroup>> = (0..group_count)
                    .map(|g| {
                        let lo = g * width;
                        let hi = r.min(lo + width);
                        let seeds: Vec<u64> = (lo..hi)
                            .map(|k| self.stream_seed(batch, k as u64))
                            .collect();
                        Mutex::new(PtGroup::new(model, &seeds, ladder[lo..hi].to_vec()))
                    })
                    .collect();
                (groups, new_rng(self.stream_seed(batch, r as u64)), 0usize)
            }
            Some(state) => {
                if state.lanes.len() != r || state.bests.len() != r {
                    return Err(CheckpointError::Malformed(format!(
                        "checkpoint holds {} lanes / {} bests for a {r}-slot ladder",
                        state.lanes.len(),
                        state.bests.len()
                    )));
                }
                let start = usize::try_from(state.next_round)
                    .ok()
                    .filter(|&s| s < rounds)
                    .ok_or_else(|| {
                        CheckpointError::Malformed(format!(
                            "resume round {} is beyond the {rounds}-round schedule",
                            state.next_round
                        ))
                    })?;
                let groups = (0..group_count)
                    .map(|g| {
                        let lo = g * width;
                        let hi = r.min(lo + width);
                        let snaps = state.lanes[lo..hi]
                            .iter()
                            .map(|l| l.rebuild(n))
                            .collect::<Result<Vec<_>, _>>()?;
                        let (energies, states): (Vec<f64>, Vec<SpinState>) = state.bests[lo..hi]
                            .iter()
                            .map(|b| b.rebuild(n))
                            .collect::<Result<Vec<_>, _>>()?
                            .into_iter()
                            .unzip();
                        Ok(Mutex::new(PtGroup {
                            batch: ReplicaBatch::from_lane_snapshots(model, &snaps),
                            betas: ladder[lo..hi].to_vec(),
                            bests: LaneBests::from_parts(energies, states),
                        }))
                    })
                    .collect::<Result<Vec<_>, CheckpointError>>()?;
                self.swap_attempts = state.swap_attempts;
                self.swap_accepts = state.swap_accepts;
                (groups, state.swap_rng.rebuild()?, start)
            }
        };

        let mut attempts = self.swap_attempts;
        let mut accepts = self.swap_accepts;
        let mut sweeps_done: u64 = lens[..start_round].iter().map(|&l| l as u64).sum();
        let mut status = OutcomeKind::Completed;
        let mut captured: Option<PtState> = None;

        if let Some(stop) = ctrl.check(sweeps_done) {
            // stopped before the first (remaining) round: the freshly-built
            // or rebuilt ladder is itself the resumable image
            status = stop;
            if stop == OutcomeKind::Checkpointed {
                captured = Some(capture_state(
                    &groups,
                    batch,
                    start_round,
                    &swap_rng,
                    attempts,
                    accepts,
                ));
            }
        } else {
            parallel::parallel_rounds_while(
                group_count,
                config.threads,
                rounds - start_round,
                // fork: every group batch-sweeps its round, each lane on its
                // private stream at its own β
                |round, g| {
                    let mut group = groups[g].lock().expect("no worker panicked");
                    group.run_round(model, lens[start_round + round]);
                },
                // join: serial exchange phase on the dedicated swap stream,
                // fixed even/odd pair schedule (absolute round parity picks
                // the offset); no exchange follows the final round — the
                // readout comes straight from the last sweeps. The
                // controller check runs AFTER the swaps so a captured state
                // always sits exactly on a round boundary.
                |round| {
                    let abs = start_round + round;
                    sweeps_done += lens[abs] as u64;
                    if abs + 1 == rounds {
                        return true;
                    }
                    let mut k = abs % 2;
                    while k + 1 < r {
                        attempts += 1;
                        let (ga, la) = locate(k);
                        let (gb, lb) = locate(k + 1);
                        let energy_k = groups[ga]
                            .lock()
                            .expect("no worker panicked")
                            .batch
                            .energy(la);
                        let energy_k1 = groups[gb]
                            .lock()
                            .expect("no worker panicked")
                            .batch
                            .energy(lb);
                        let accept_ln = (ladder[k] - ladder[k + 1]) * (energy_k - energy_k1);
                        if accept_ln >= 0.0 || swap_rng.gen::<f64>() < accept_ln.exp() {
                            accepts += 1;
                            if ga == gb {
                                groups[ga]
                                    .lock()
                                    .expect("no worker panicked")
                                    .batch
                                    .swap_lanes(la, lb);
                            } else {
                                let mut a = groups[ga].lock().expect("no worker panicked");
                                let mut b = groups[gb].lock().expect("no worker panicked");
                                ReplicaBatch::swap_lanes_between(
                                    &mut a.batch,
                                    la,
                                    &mut b.batch,
                                    lb,
                                );
                            }
                        }
                        k += 2;
                    }
                    if let Some(stop) = ctrl.check(sweeps_done) {
                        status = stop;
                        if stop == OutcomeKind::Checkpointed {
                            captured = Some(capture_state(
                                &groups,
                                batch,
                                abs + 1,
                                &swap_rng,
                                attempts,
                                accepts,
                            ));
                        }
                        return false;
                    }
                    true
                },
            );
        }
        self.swap_attempts = attempts;
        self.swap_accepts = accepts;

        // ordered reduction: lowest best energy wins, ties break to the
        // lowest (hottest) slot index — deterministic for any thread count
        let mut best_slot = 0usize;
        let mut best_energy = f64::INFINITY;
        for k in 0..r {
            let (g, l) = locate(k);
            let group = groups[g].lock().expect("no worker panicked");
            if group.bests.energy(l) < best_energy {
                best_energy = group.bests.energy(l);
                best_slot = k;
            }
        }
        let (g, l) = locate(best_slot);
        let best = groups[g]
            .lock()
            .expect("no worker panicked")
            .bests
            .state(l)
            .clone();
        // the coldest slot is the machine's readout
        let (g, l) = locate(r - 1);
        let cold = groups[g].lock().expect("no worker panicked");
        Ok(Controlled {
            outcome: SolveOutcome {
                last: cold.batch.state(l),
                last_energy: cold.batch.energy(l),
                best,
                best_energy,
                mcs: sweeps_done * r as u64,
            },
            status,
            state: captured,
        })
    }
}

/// Snapshots the whole ladder — every slot's lane and best, flat and in
/// slot order — plus the swap stream and counters, as of `next_round`.
/// Callers hold no group lock; every worker is parked when this runs.
fn capture_state(
    groups: &[Mutex<PtGroup>],
    batch: u64,
    next_round: usize,
    swap_rng: &ChaCha8Rng,
    attempts: u64,
    accepts: u64,
) -> PtState {
    let mut lanes = Vec::new();
    let mut bests = Vec::new();
    for group in groups {
        let group = group.lock().expect("no worker panicked");
        for l in 0..group.batch.width() {
            lanes.push(LaneState::capture(&group.batch.lane_snapshot(l)));
            bests.push(BestState::capture(
                group.bests.energy(l),
                group.bests.state(l),
            ));
        }
    }
    PtState {
        batch_index: batch,
        next_round: next_round as u64,
        lanes,
        bests,
        swap_rng: RngState::capture(swap_rng),
        swap_attempts: attempts,
        swap_accepts: accepts,
    }
}

impl IsingSolver for ParallelTempering {
    fn solve(&mut self, model: &IsingModel) -> SolveOutcome {
        self.solve_controlled(model, &RunController::unlimited())
            .outcome
    }

    fn mcs_per_solve(&self, _n: usize) -> u64 {
        (self.config.sweeps * self.config.replicas) as u64
    }

    fn name(&self) -> &'static str {
        "parallel tempering (p-bit)"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use saim_ising::QuboBuilder;

    fn rugged_model() -> IsingModel {
        // frustrated couplings + fields: several local minima
        let mut b = QuboBuilder::new(8);
        for i in 0..8 {
            for j in (i + 1)..8 {
                let sign = if (i + j) % 3 == 0 { 1.0 } else { -0.5 };
                b.add_pair(i, j, sign).unwrap();
            }
            b.add_linear(i, if i % 2 == 0 { -0.7 } else { 0.3 })
                .unwrap();
        }
        b.build().to_ising()
    }

    fn brute_min(model: &IsingModel) -> f64 {
        (0u64..(1 << model.len()))
            .map(|m| model.energy(&saim_ising::BinaryState::from_mask(m, model.len()).to_spins()))
            .fold(f64::INFINITY, f64::min)
    }

    #[test]
    fn finds_ground_state_of_rugged_model() {
        let model = rugged_model();
        let opt = brute_min(&model);
        let cfg = PtConfig {
            replicas: 8,
            sweeps: 400,
            ..PtConfig::default()
        };
        let out = ParallelTempering::new(cfg, 5).solve(&model);
        assert!(
            (out.best_energy - opt).abs() < 1e-9,
            "best {} vs opt {opt}",
            out.best_energy
        );
    }

    #[test]
    fn ladder_is_geometric_and_monotone() {
        let cfg = PtConfig {
            replicas: 5,
            beta_min: 0.2,
            beta_max: 20.0,
            ..PtConfig::default()
        };
        let ladder = cfg.ladder();
        assert_eq!(ladder.len(), 5);
        assert!((ladder[0] - 0.2).abs() < 1e-12);
        assert!((ladder[4] - 20.0).abs() < 1e-12);
        for w in ladder.windows(2) {
            assert!(w[1] > w[0]);
        }
        // constant ratio
        let r0 = ladder[1] / ladder[0];
        let r1 = ladder[3] / ladder[2];
        assert!((r0 - r1).abs() < 1e-9);
    }

    /// Width-1 lane groups — the grouping every many-worker host produces
    /// when workers outnumber ladder slots — take the batch's serial-shaped
    /// scan sweep: each slot must replay a serial [`PbitMachine`] fed the
    /// same stream bit for bit, held β and annealing alike.
    #[test]
    fn width_one_pt_groups_replay_serial_machines() {
        use crate::pbit::PbitMachine;
        use crate::rng::NoiseSource;

        let model = rugged_model();
        let betas = [0.7, 1.3, 2.9, 40.0];
        let mut groups: Vec<PtGroup> = betas
            .iter()
            .enumerate()
            .map(|(k, &beta)| PtGroup::new(&model, &[derive_seed(5, k as u64)], vec![beta]))
            .collect();
        let mut serial: Vec<(PbitMachine, NoiseSource)> = (0..betas.len() as u64)
            .map(|k| {
                let mut rng = new_rng(derive_seed(5, k));
                let machine = PbitMachine::new(&model, &mut rng);
                (machine, NoiseSource::new(rng))
            })
            .collect();
        for _round in 0..6 {
            for g in &mut groups {
                g.run_round(&model, 10);
            }
            for ((machine, noise), &beta) in serial.iter_mut().zip(&betas) {
                for _ in 0..10 {
                    machine.sweep_buffered(&model, beta, noise);
                }
            }
            for (k, (g, (machine, _))) in groups.iter().zip(&serial).enumerate() {
                assert_eq!(g.batch.state(0), *machine.state(), "slot {k}");
                assert_eq!(
                    g.batch.energy(0).to_bits(),
                    machine.energy().to_bits(),
                    "slot {k} energy"
                );
            }
        }
    }

    #[test]
    fn thread_count_never_changes_results() {
        let model = rugged_model();
        let config = |threads: usize| PtConfig {
            replicas: 6,
            sweeps: 150,
            threads,
            ..PtConfig::default()
        };
        let reference = ParallelTempering::new(config(1), 42).solve(&model);
        for threads in [2, 3, 8, 0] {
            let got = ParallelTempering::new(config(threads), 42).solve(&model);
            assert_eq!(got, reference, "threads = {threads}");
        }
    }

    #[test]
    fn consecutive_solves_are_distinct_batches() {
        let model = rugged_model();
        let cfg = PtConfig {
            replicas: 4,
            sweeps: 20,
            beta_max: 1.0,
            ..PtConfig::default()
        };
        let mut pt = ParallelTempering::new(cfg, 8);
        let a = pt.solve(&model);
        let b = pt.solve(&model);
        // at these temperatures two short batches almost surely read differently
        assert_ne!(a.last, b.last);
        // and a fresh solver replays batch 0 exactly
        let again = ParallelTempering::new(cfg, 8).solve(&model);
        assert_eq!(a, again);
    }

    #[test]
    fn stream_seeds_are_distinct_across_slots_and_batches() {
        let cfg = PtConfig {
            replicas: 4,
            ..PtConfig::default()
        };
        let pt = ParallelTempering::new(cfg, 3);
        let mut seen = std::collections::HashSet::new();
        for batch in 0..4 {
            // slots 0..replicas plus the swap stream at index `replicas`
            for slot in 0..=4 {
                assert!(
                    seen.insert(pt.stream_seed(batch, slot)),
                    "stream collision at batch {batch} slot {slot}"
                );
            }
        }
    }

    #[test]
    fn swaps_do_occur() {
        let model = rugged_model();
        let cfg = PtConfig {
            replicas: 6,
            sweeps: 200,
            ..PtConfig::default()
        };
        let mut pt = ParallelTempering::new(cfg, 1);
        let _ = pt.solve(&model);
        assert!(pt.swap_attempts > 0);
        assert!(
            pt.swap_acceptance() > 0.0,
            "no replica exchange ever accepted"
        );
    }

    #[test]
    fn mcs_counts_all_replicas() {
        let cfg = PtConfig {
            replicas: 4,
            sweeps: 50,
            ..PtConfig::default()
        };
        let mut pt = ParallelTempering::new(cfg, 2);
        let model = rugged_model();
        let out = pt.solve(&model);
        assert_eq!(out.mcs, 200);
        assert_eq!(pt.mcs_per_solve(8), 200);
    }

    #[test]
    fn default_matches_ptda_reference() {
        assert_eq!(PtConfig::default().replicas, 26);
    }

    #[test]
    #[should_panic(expected = "at least two replicas")]
    fn rejects_single_replica() {
        let cfg = PtConfig {
            replicas: 1,
            ..PtConfig::default()
        };
        let _ = ParallelTempering::new(cfg, 0);
    }

    #[test]
    fn controlled_solve_with_idle_controller_matches_solve() {
        let model = rugged_model();
        let cfg = PtConfig {
            replicas: 6,
            sweeps: 150,
            ..PtConfig::default()
        };
        let a = ParallelTempering::new(cfg, 42).solve(&model);
        let mut pt = ParallelTempering::new(cfg, 42);
        let b = pt.solve_controlled(&model, &RunController::unlimited());
        assert_eq!(b.status, OutcomeKind::Completed);
        assert!(b.state.is_none());
        assert_eq!(b.outcome, a);
    }

    #[test]
    fn interrupted_resume_is_bit_identical_across_threads() {
        let model = rugged_model();
        let cfg = PtConfig {
            replicas: 6,
            sweeps: 150,
            swap_interval: 10,
            threads: 1,
            ..PtConfig::default()
        };
        let mut oracle_pt = ParallelTempering::new(cfg, 42);
        let oracle = oracle_pt.solve(&model);
        for stop in [10u64, 70, 140] {
            let ctrl = RunController::unlimited().with_stop_after(stop);
            let cut = ParallelTempering::new(cfg, 42).solve_controlled(&model, &ctrl);
            assert_eq!(cut.status, OutcomeKind::Checkpointed, "stop={stop}");
            assert_eq!(cut.outcome.mcs, stop * 6, "stop={stop}");
            let state = cut.state.expect("checkpointed runs carry state");
            assert_eq!(state.next_round, stop / 10);
            for threads in [1usize, 2, 8] {
                let cfg2 = PtConfig { threads, ..cfg };
                let mut second = ParallelTempering::new(cfg2, 42);
                let resumed = second
                    .resume_controlled(&model, &state, &RunController::unlimited())
                    .expect("state fits the ladder");
                assert_eq!(resumed.status, OutcomeKind::Completed);
                assert_eq!(resumed.outcome, oracle, "stop={stop} threads={threads}");
                assert_eq!(second.swap_attempts, oracle_pt.swap_attempts);
                assert_eq!(second.swap_accepts, oracle_pt.swap_accepts);
            }
        }
    }

    #[test]
    fn checkpoint_before_the_first_round_resumes_identically() {
        let model = rugged_model();
        let cfg = PtConfig {
            replicas: 4,
            sweeps: 60,
            ..PtConfig::default()
        };
        let oracle = ParallelTempering::new(cfg, 9).solve(&model);
        let ctrl = RunController::unlimited();
        ctrl.request_checkpoint();
        let cut = ParallelTempering::new(cfg, 9).solve_controlled(&model, &ctrl);
        assert_eq!(cut.status, OutcomeKind::Checkpointed);
        assert_eq!(cut.outcome.mcs, 0);
        let state = cut.state.expect("checkpointed");
        assert_eq!(state.next_round, 0);
        let resumed = ParallelTempering::new(cfg, 9)
            .resume_controlled(&model, &state, &RunController::unlimited())
            .expect("state fits the ladder");
        assert_eq!(resumed.outcome, oracle);
    }

    #[test]
    fn cancel_and_deadline_return_partial_outcomes() {
        let model = rugged_model();
        let cfg = PtConfig {
            replicas: 4,
            sweeps: 60,
            ..PtConfig::default()
        };
        let cancel = RunController::unlimited();
        cancel.request_cancel();
        let cut = ParallelTempering::new(cfg, 3).solve_controlled(&model, &cancel);
        assert_eq!(cut.status, OutcomeKind::Cancelled);
        assert!(cut.state.is_none());
        assert_eq!(cut.outcome.mcs, 0);
        assert_eq!(cut.outcome.best_energy, model.energy(&cut.outcome.best));

        let expired = RunController::unlimited().with_deadline_in(std::time::Duration::ZERO);
        let cut = ParallelTempering::new(cfg, 3).solve_controlled(&model, &expired);
        assert_eq!(cut.status, OutcomeKind::DeadlineExceeded);
        assert!(cut.state.is_none());
    }

    #[test]
    fn resume_rejects_a_mismatched_ladder() {
        let model = rugged_model();
        let cfg = PtConfig {
            replicas: 6,
            sweeps: 60,
            ..PtConfig::default()
        };
        let ctrl = RunController::unlimited().with_stop_after(10);
        let state = ParallelTempering::new(cfg, 42)
            .solve_controlled(&model, &ctrl)
            .state
            .expect("checkpointed");
        let narrow = PtConfig { replicas: 4, ..cfg };
        let mut other = ParallelTempering::new(narrow, 42);
        assert!(matches!(
            other.resume_controlled(&model, &state, &RunController::unlimited()),
            Err(CheckpointError::Malformed(_))
        ));
        // a tampered round index past the schedule is rejected too
        let mut tampered = state.clone();
        tampered.next_round = 6;
        let mut same = ParallelTempering::new(cfg, 42);
        assert!(matches!(
            same.resume_controlled(&model, &tampered, &RunController::unlimited()),
            Err(CheckpointError::Malformed(_))
        ));
    }
}
