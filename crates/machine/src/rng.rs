//! Deterministic random-number plumbing.
//!
//! All stochastic components in this workspace take explicit `u64` seeds and
//! build a [`rand_chacha::ChaCha8Rng`] from them, so every experiment —
//! tables, figures, tests — replays bit-identically across platforms.

use rand_chacha::rand_core::{RngCore, SeedableRng};
use rand_chacha::ChaCha8Rng;

/// Creates the workspace-standard deterministic RNG from a seed.
///
/// ```
/// use rand::Rng;
/// let mut a = saim_machine::new_rng(7);
/// let mut b = saim_machine::new_rng(7);
/// assert_eq!(a.gen::<u64>(), b.gen::<u64>());
/// ```
pub fn new_rng(seed: u64) -> ChaCha8Rng {
    ChaCha8Rng::seed_from_u64(seed)
}

/// Derives an independent stream seed from a master seed and a stream index.
///
/// Uses the SplitMix64 finalizer, which is a bijection on `u64`, so distinct
/// `(master, stream)` pairs never collide for a fixed master.
///
/// ```
/// let a = saim_machine::derive_seed(1, 0);
/// let b = saim_machine::derive_seed(1, 1);
/// assert_ne!(a, b);
/// assert_eq!(a, saim_machine::derive_seed(1, 0));
/// ```
pub fn derive_seed(master: u64, stream: u64) -> u64 {
    let mut z = master.wrapping_add(0x9E37_79B9_7F4A_7C15_u64.wrapping_mul(stream.wrapping_add(1)));
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Words buffered per [`NoiseSource`] refill (one refill = 64 `u64` draws =
/// 8 ChaCha blocks).
const NOISE_BLOCK: usize = 64;

/// A block-buffered tap on a [`ChaCha8Rng`] stream for the sweep hot path.
///
/// The p-bit update draws one `U(-1, 1)` noise value per undecided spin.
/// Going through `Rng::gen_range` costs a full generator round trip (two
/// word fetches with exhaustion checks plus the range arithmetic) *per
/// decision*; this source instead fills a block of 64 raw `u64`s at a time
/// and converts on consumption, so the common case is an indexed load.
///
/// **Draw-order contract:** the values produced are exactly the stream's
/// `next_u64` sequence in order — buffering changes *when* words are pulled
/// from the generator, never *which* word the k-th draw maps to. A sweep
/// loop fed from a `NoiseSource` therefore replays bit-identically against
/// the same loop drawing `rng.gen_range(-1.0..1.0)` / `rng.gen::<f64>()`
/// per decision, as long as nothing else consumes the underlying stream
/// in between (interleave via [`NoiseSource::rng_mut`] only after a
/// [`NoiseSource::reset`]).
#[derive(Debug, Clone)]
pub struct NoiseSource {
    rng: ChaCha8Rng,
    buf: [u64; NOISE_BLOCK],
    pos: usize,
}

impl NoiseSource {
    /// Wraps an existing generator; the buffer starts empty.
    pub fn new(rng: ChaCha8Rng) -> Self {
        NoiseSource {
            rng,
            buf: [0; NOISE_BLOCK],
            pos: NOISE_BLOCK,
        }
    }

    /// Builds a source over the workspace-standard stream for `seed`.
    pub fn from_seed(seed: u64) -> Self {
        Self::new(new_rng(seed))
    }

    /// Discards any buffered words.
    ///
    /// Call before touching the raw stream through
    /// [`NoiseSource::rng_mut`] so raw draws and buffered draws never
    /// interleave mid-block.
    pub fn reset(&mut self) {
        self.pos = NOISE_BLOCK;
    }

    /// The underlying generator, for draws outside the noise path (e.g. the
    /// coin flips of a state re-randomization). [`NoiseSource::reset`]
    /// first.
    pub fn rng_mut(&mut self) -> &mut ChaCha8Rng {
        &mut self.rng
    }

    /// Captures the source's complete state: the generator's state words
    /// plus every buffered-but-unconsumed word.
    ///
    /// The buffer must be part of the snapshot — a refill pulls 64 words
    /// from the stream at once, so at a sweep boundary the buffer typically
    /// straddles into draws the next sweep will consume. Dropping it and
    /// re-buffering from the generator position would skip those words and
    /// silently fork the trajectory.
    pub(crate) fn snapshot(&self) -> NoiseSnapshot {
        let (key, counter, word_pos) = self.rng.state_words();
        NoiseSnapshot {
            key,
            counter,
            word_pos,
            buf: self.buf.to_vec(),
            pos: self.pos,
        }
    }

    /// Rebuilds a source from a [`NoiseSource::snapshot`]; the restored
    /// source continues the draw sequence bit-identically.
    pub(crate) fn from_snapshot(snap: &NoiseSnapshot) -> Self {
        let mut buf = [0u64; NOISE_BLOCK];
        buf.copy_from_slice(&snap.buf);
        NoiseSource {
            rng: ChaCha8Rng::from_state_words(snap.key, snap.counter, snap.word_pos),
            buf,
            pos: snap.pos,
        }
    }

    #[inline]
    fn next_raw(&mut self) -> u64 {
        if self.pos == NOISE_BLOCK {
            for slot in &mut self.buf {
                *slot = self.rng.next_u64();
            }
            self.pos = 0;
        }
        let word = self.buf[self.pos];
        self.pos += 1;
        word
    }

    /// Uniform draw in `[0, 1)` with 53 bits of precision — bit-identical to
    /// `rng.gen::<f64>()` on the same stream position.
    #[inline]
    pub fn unit(&mut self) -> f64 {
        (self.next_raw() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform draw in `[-1, 1)` — bit-identical to
    /// `rng.gen_range(-1.0..1.0)` on the same stream position.
    #[inline]
    pub fn symmetric(&mut self) -> f64 {
        -1.0 + self.unit() * 2.0
    }
}

/// A plain-data image of a [`NoiseSource`]'s state, used by the checkpoint
/// layer. `buf` always holds exactly [`NOISE_BLOCK`] words (the checkpoint
/// parser enforces this before [`NoiseSource::from_snapshot`] runs).
#[derive(Debug, Clone, PartialEq)]
pub(crate) struct NoiseSnapshot {
    /// ChaCha key words.
    pub key: [u32; 8],
    /// ChaCha block counter.
    pub counter: u64,
    /// Next unread word index in the generator's current block.
    pub word_pos: usize,
    /// The buffered `u64` words (length [`NOISE_BLOCK`]).
    pub buf: Vec<u64>,
    /// Next unconsumed index into `buf`; [`NOISE_BLOCK`] = empty.
    pub pos: usize,
}

/// Number of buffered words a [`NoiseSnapshot`] must carry.
pub(crate) const NOISE_SNAPSHOT_WORDS: usize = NOISE_BLOCK;

/// The two noise draws a Monte Carlo sweep makes, abstracted so one sweep
/// implementation serves both the buffered ([`NoiseSource`]) and the
/// per-decision (`&mut ChaCha8Rng`) paths.
pub(crate) trait SweepNoise {
    /// One `U(-1, 1)` draw (the p-bit Gibbs noise term).
    fn noise_symmetric(&mut self) -> f64;
    /// One `U(0, 1)` draw (the Metropolis accept test).
    fn noise_unit(&mut self) -> f64;
}

impl SweepNoise for ChaCha8Rng {
    fn noise_symmetric(&mut self) -> f64 {
        use rand::Rng;
        self.gen_range(-1.0..1.0)
    }

    fn noise_unit(&mut self) -> f64 {
        use rand::Rng;
        self.gen::<f64>()
    }
}

impl SweepNoise for NoiseSource {
    fn noise_symmetric(&mut self) -> f64 {
        self.symmetric()
    }

    fn noise_unit(&mut self) -> f64 {
        self.unit()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn rng_is_deterministic() {
        let mut a = new_rng(123);
        let mut b = new_rng(123);
        for _ in 0..16 {
            assert_eq!(a.gen::<f64>().to_bits(), b.gen::<f64>().to_bits());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = new_rng(1);
        let mut b = new_rng(2);
        assert_ne!(a.gen::<u64>(), b.gen::<u64>());
    }

    #[test]
    fn derived_streams_are_distinct() {
        let mut seen = std::collections::HashSet::new();
        for stream in 0..256 {
            assert!(
                seen.insert(derive_seed(42, stream)),
                "collision at {stream}"
            );
        }
    }

    #[test]
    fn derive_is_stable_across_calls() {
        assert_eq!(derive_seed(7, 3), derive_seed(7, 3));
    }

    #[test]
    fn buffered_noise_replays_the_per_decision_draws() {
        // the k-th buffered draw must be bit-identical to the k-th direct
        // gen_range / gen draw on the same stream, across refill boundaries
        let mut direct = new_rng(99);
        let mut buffered = NoiseSource::from_seed(99);
        for k in 0..3 * super::NOISE_BLOCK {
            if k % 2 == 0 {
                let a: f64 = direct.gen_range(-1.0..1.0);
                assert_eq!(a.to_bits(), buffered.symmetric().to_bits(), "draw {k}");
            } else {
                let a: f64 = direct.gen();
                assert_eq!(a.to_bits(), buffered.unit().to_bits(), "draw {k}");
            }
        }
    }

    #[test]
    fn snapshot_restores_mid_buffer_draw_sequence() {
        // interrupt a draw sequence mid-buffer, restore, and check the
        // restored source replays the rest of the stream bit-identically
        let mut original = NoiseSource::from_seed(17);
        for _ in 0..super::NOISE_BLOCK + 13 {
            let _ = original.symmetric();
        }
        let snap = original.snapshot();
        let mut restored = NoiseSource::from_snapshot(&snap);
        for k in 0..2 * super::NOISE_BLOCK {
            assert_eq!(
                original.symmetric().to_bits(),
                restored.symmetric().to_bits(),
                "draw {k}"
            );
        }
    }

    #[test]
    fn reset_discards_buffered_words() {
        let mut a = NoiseSource::from_seed(4);
        let _ = a.symmetric(); // fills a block, consumes one word
        a.reset();
        // after the reset the next draw comes from a fresh block at the
        // stream's advanced position, not from the discarded buffer
        let mut reference = new_rng(4);
        for _ in 0..super::NOISE_BLOCK {
            let _ = reference.next_u64();
        }
        assert_eq!(
            a.symmetric().to_bits(),
            ((-1.0) + ((reference.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)) * 2.0)
                .to_bits()
        );
    }
}
