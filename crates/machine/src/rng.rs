//! Deterministic random-number plumbing.
//!
//! All stochastic components in this workspace take explicit `u64` seeds and
//! build a [`rand_chacha::ChaCha8Rng`] from them, so every experiment —
//! tables, figures, tests — replays bit-identically across platforms.

use rand_chacha::rand_core::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// Creates the workspace-standard deterministic RNG from a seed.
///
/// ```
/// use rand::Rng;
/// let mut a = saim_machine::new_rng(7);
/// let mut b = saim_machine::new_rng(7);
/// assert_eq!(a.gen::<u64>(), b.gen::<u64>());
/// ```
pub fn new_rng(seed: u64) -> ChaCha8Rng {
    ChaCha8Rng::seed_from_u64(seed)
}

/// Derives an independent stream seed from a master seed and a stream index.
///
/// Uses the SplitMix64 finalizer, which is a bijection on `u64`, so distinct
/// `(master, stream)` pairs never collide for a fixed master.
///
/// ```
/// let a = saim_machine::derive_seed(1, 0);
/// let b = saim_machine::derive_seed(1, 1);
/// assert_ne!(a, b);
/// assert_eq!(a, saim_machine::derive_seed(1, 0));
/// ```
pub fn derive_seed(master: u64, stream: u64) -> u64 {
    let mut z = master.wrapping_add(0x9E37_79B9_7F4A_7C15_u64.wrapping_mul(stream.wrapping_add(1)));
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn rng_is_deterministic() {
        let mut a = new_rng(123);
        let mut b = new_rng(123);
        for _ in 0..16 {
            assert_eq!(a.gen::<f64>().to_bits(), b.gen::<f64>().to_bits());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = new_rng(1);
        let mut b = new_rng(2);
        assert_ne!(a.gen::<u64>(), b.gen::<u64>());
    }

    #[test]
    fn derived_streams_are_distinct() {
        let mut seen = std::collections::HashSet::new();
        for stream in 0..256 {
            assert!(
                seen.insert(derive_seed(42, stream)),
                "collision at {stream}"
            );
        }
    }

    #[test]
    fn derive_is_stable_across_calls() {
        assert_eq!(derive_seed(7, 3), derive_seed(7, 3));
    }
}
