use crate::checkpoint::{
    BestState, CheckpointError, Controlled, MachineState, NoiseState, OutcomeKind, RunController,
    SaState,
};
use crate::pbit::PbitMachine;
use crate::rng::NoiseSource;
use crate::schedule::BetaSchedule;
use crate::solver::{IsingSolver, SolveOutcome};
use saim_ising::{IsingModel, SpinState};

/// Simulated annealing on the p-bit machine (paper section III-B).
///
/// One [`IsingSolver::solve`] call performs a single annealed run: the state
/// is re-randomized, β follows the configured schedule over `mcs_per_run`
/// sweeps, and the outcome reports both the last sample (SAIM reads this) and
/// the best sample seen (penalty-method baselines use this).
///
/// The solver owns its RNG, so consecutive `solve` calls are *different*
/// stochastic runs of one reproducible stream — exactly the "2000 SA runs of
/// 10³ MCS" structure of the paper's Table I.
///
/// The machine is reused across runs, so the per-spin drive bounds behind
/// the sweep's three-tier decision kernel (see [`PbitMachine`]) are
/// computed once per model and survive every re-anneal; the per-sweep β of
/// the schedule costs no reclassification (the kernel classifies undecided
/// spins on demand from the cached bounds).
///
/// ```
/// use saim_ising::QuboBuilder;
/// use saim_machine::{BetaSchedule, IsingSolver, SimulatedAnnealing};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut b = QuboBuilder::new(4);
/// for i in 0..4 { b.add_linear(i, -1.0)?; }
/// let model = b.build().to_ising();
/// let mut sa = SimulatedAnnealing::new(BetaSchedule::linear(8.0), 100, 7);
/// let out = sa.solve(&model);
/// assert_eq!(out.mcs, 100);
/// assert!((out.best_energy - (-4.0)).abs() < 1e-9);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct SimulatedAnnealing {
    schedule: BetaSchedule,
    mcs_per_run: usize,
    /// The solver's stream, tapped in blocks for the sweep noise. Each run
    /// resets the buffer, draws the initial state from the raw stream, then
    /// consumes block-buffered noise — exactly the per-lane discipline of
    /// [`crate::ReplicaBatch`], so a fresh single-run annealer is the serial
    /// replay reference for a batch lane on the same seed.
    noise: NoiseSource,
    machine: Option<PbitMachine>,
    /// Preallocated best-state buffer: improvements are `copy_from_slice`
    /// overwrites instead of fresh clones (an improvement can happen on a
    /// large fraction of sweeps early in a run).
    best_buf: Option<SpinState>,
    dynamics: Dynamics,
}

/// The single-flip Monte Carlo update rule used inside a sweep.
///
/// Both rules sample the same Boltzmann distribution in equilibrium; the
/// p-bit (Gibbs) rule is the paper's hardware model, Metropolis is the
/// digital-annealer convention.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, serde::Serialize, serde::Deserialize)]
pub enum Dynamics {
    /// p-bit Gibbs update `m_i = sign(tanh(βI_i) + U(-1,1))` (paper eq. 10).
    #[default]
    Gibbs,
    /// Metropolis accept/reject with probability `min(1, exp(-β ΔH))`.
    Metropolis,
}

impl SimulatedAnnealing {
    /// Creates an annealer with the given schedule, sweeps per run, and seed.
    ///
    /// # Panics
    ///
    /// Panics if `mcs_per_run == 0`.
    pub fn new(schedule: BetaSchedule, mcs_per_run: usize, seed: u64) -> Self {
        assert!(mcs_per_run > 0, "a run needs at least one sweep");
        SimulatedAnnealing {
            schedule,
            mcs_per_run,
            noise: NoiseSource::from_seed(seed),
            machine: None,
            best_buf: None,
            dynamics: Dynamics::Gibbs,
        }
    }

    /// Switches the update rule (default: the paper's p-bit Gibbs rule).
    pub fn with_dynamics(mut self, dynamics: Dynamics) -> Self {
        self.dynamics = dynamics;
        self
    }

    /// The annealing schedule.
    pub fn schedule(&self) -> BetaSchedule {
        self.schedule
    }

    /// Sweeps per run.
    pub fn mcs_per_run(&self) -> usize {
        self.mcs_per_run
    }

    /// The update rule in use.
    pub fn dynamics(&self) -> Dynamics {
        self.dynamics
    }

    /// Like [`IsingSolver::solve`], but polling `ctrl` at every sweep
    /// boundary: the run can be cancelled, deadlined, or checkpointed
    /// mid-anneal. With an idle controller the result is bit-identical to
    /// `solve`.
    pub fn solve_controlled(
        &mut self,
        model: &IsingModel,
        ctrl: &RunController,
    ) -> Controlled<SaState> {
        // run boundary, exactly as in `solve`: discard buffered noise, draw
        // the initial state from the raw stream
        self.noise.reset();
        let machine =
            PbitMachine::obtain_randomized(&mut self.machine, model, self.noise.rng_mut());
        let init_energy = machine.energy();
        let init_state = machine.state();
        match &mut self.best_buf {
            Some(b) if b.len() == model.len() => b.copy_from(init_state),
            _ => self.best_buf = Some(init_state.clone()),
        }
        self.run_from(model, 0, init_energy, ctrl)
    }

    /// Continues a checkpointed run from its [`SaState`]. The machine books,
    /// noise stream (buffer included), and best-so-far are installed
    /// verbatim, so the completed run is bit-identical to one that was never
    /// interrupted.
    ///
    /// # Errors
    ///
    /// [`CheckpointError::Malformed`] when the state does not fit this
    /// solver's schedule or the model's size.
    pub fn resume_controlled(
        &mut self,
        model: &IsingModel,
        state: &SaState,
        ctrl: &RunController,
    ) -> Result<Controlled<SaState>, CheckpointError> {
        let next_step = usize::try_from(state.next_step)
            .map_err(|_| CheckpointError::Malformed("resume step overflows usize".into()))?;
        if next_step > self.mcs_per_run {
            return Err(CheckpointError::Malformed(format!(
                "resume step {next_step} is beyond the {}-sweep schedule",
                self.mcs_per_run
            )));
        }
        let snap = state.machine.rebuild(model.len())?;
        let (best_energy, best) = state.best.rebuild(model.len())?;
        self.noise = NoiseSource::from_snapshot(&state.noise.rebuild()?);
        self.machine = Some(PbitMachine::from_snapshot(model, &snap));
        self.best_buf = Some(best);
        Ok(self.run_from(model, next_step, best_energy, ctrl))
    }

    /// The annealing loop from `start_step`, shared by fresh and resumed
    /// controlled runs. Polls after each sweep's best-update; the final
    /// sweep never checkpoints (a run that finished is `Completed`).
    fn run_from(
        &mut self,
        model: &IsingModel,
        start_step: usize,
        mut best_energy: f64,
        ctrl: &RunController,
    ) -> Controlled<SaState> {
        let machine = self.machine.as_mut().expect("machine installed by caller");
        let best = self.best_buf.as_mut().expect("best installed by caller");
        let mut status = OutcomeKind::Completed;
        let mut next_step = self.mcs_per_run;
        for step in start_step..self.mcs_per_run {
            let beta = self.schedule.beta_at(step, self.mcs_per_run);
            match self.dynamics {
                Dynamics::Gibbs => machine.sweep_buffered(model, beta, &mut self.noise),
                Dynamics::Metropolis => {
                    machine.metropolis_sweep_buffered(model, beta, &mut self.noise)
                }
            };
            if machine.energy() < best_energy {
                best_energy = machine.energy();
                best.copy_from(machine.state());
            }
            if step + 1 < self.mcs_per_run {
                if let Some(stop) = ctrl.poll((step + 1) as u64) {
                    status = stop;
                    next_step = step + 1;
                    break;
                }
            }
        }
        let state = (status == OutcomeKind::Checkpointed).then(|| SaState {
            next_step: next_step as u64,
            machine: MachineState::capture(&machine.snapshot()),
            noise: NoiseState::capture(&self.noise.snapshot()),
            best: BestState::capture(best_energy, best),
        });
        Controlled {
            outcome: SolveOutcome {
                last: machine.state().clone(),
                last_energy: machine.energy(),
                best: best.clone(),
                best_energy,
                mcs: next_step as u64,
            },
            status,
            state,
        }
    }
}

impl IsingSolver for SimulatedAnnealing {
    fn solve(&mut self, model: &IsingModel) -> SolveOutcome {
        // run boundary: discard buffered noise so the initial-state coin
        // flips read the raw stream, then sweeps consume fresh blocks
        self.noise.reset();
        let machine =
            PbitMachine::obtain_randomized(&mut self.machine, model, self.noise.rng_mut());
        let best = match &mut self.best_buf {
            Some(b) if b.len() == model.len() => {
                b.copy_from(machine.state());
                b
            }
            _ => {
                self.best_buf = Some(machine.state().clone());
                self.best_buf.as_mut().expect("just set")
            }
        };
        let mut best_energy = machine.energy();
        for step in 0..self.mcs_per_run {
            let beta = self.schedule.beta_at(step, self.mcs_per_run);
            match self.dynamics {
                Dynamics::Gibbs => machine.sweep_buffered(model, beta, &mut self.noise),
                Dynamics::Metropolis => {
                    machine.metropolis_sweep_buffered(model, beta, &mut self.noise)
                }
            };
            if machine.energy() < best_energy {
                best_energy = machine.energy();
                best.copy_from(machine.state());
            }
        }
        SolveOutcome {
            last: machine.state().clone(),
            last_energy: machine.energy(),
            best: best.clone(),
            best_energy,
            mcs: self.mcs_per_run as u64,
        }
    }

    fn mcs_per_solve(&self, _n: usize) -> u64 {
        self.mcs_per_run as u64
    }

    fn name(&self) -> &'static str {
        "simulated annealing (p-bit)"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use saim_ising::{BinaryState, QuboBuilder};

    /// A 6-variable model with a unique planted ground state.
    fn planted_model() -> (IsingModel, BinaryState, f64) {
        // E(x) = Σ (x_i - t_i)^2 expanded as QUBO: minimized at x = t.
        let target = BinaryState::from_bits(&[1, 0, 1, 1, 0, 1]);
        let mut b = QuboBuilder::new(6);
        for i in 0..6 {
            // (x - t)^2 = x - 2tx + t^2 = (1-2t) x + t
            let t = f64::from(target.bit(i));
            b.add_linear(i, 1.0 - 2.0 * t).unwrap();
            b.add_offset(t);
        }
        let q = b.build();
        let opt = q.energy(&target);
        (q.to_ising(), target, opt)
    }

    #[test]
    fn finds_planted_ground_state() {
        let (model, target, opt) = planted_model();
        let mut sa = SimulatedAnnealing::new(BetaSchedule::linear(10.0), 300, 1);
        let out = sa.solve(&model);
        assert!((out.best_energy - opt).abs() < 1e-9);
        assert_eq!(out.best.to_binary(), target);
    }

    #[test]
    fn best_energy_never_exceeds_last_energy() {
        let (model, _, _) = planted_model();
        let mut sa = SimulatedAnnealing::new(BetaSchedule::linear(2.0), 50, 3);
        for _ in 0..20 {
            let out = sa.solve(&model);
            assert!(out.best_energy <= out.last_energy + 1e-12);
            assert!((model.energy(&out.best) - out.best_energy).abs() < 1e-9);
            assert!((model.energy(&out.last) - out.last_energy).abs() < 1e-9);
        }
    }

    #[test]
    fn repeated_solves_are_distinct_runs() {
        let (model, _, _) = planted_model();
        let mut sa = SimulatedAnnealing::new(BetaSchedule::linear(0.1), 5, 5);
        let a = sa.solve(&model);
        let b = sa.solve(&model);
        // at high temperature two short runs almost surely end differently
        assert_ne!(a.last, b.last);
    }

    #[test]
    fn same_seed_reproduces() {
        let (model, _, _) = planted_model();
        let mut sa1 = SimulatedAnnealing::new(BetaSchedule::linear(5.0), 50, 77);
        let mut sa2 = SimulatedAnnealing::new(BetaSchedule::linear(5.0), 50, 77);
        for _ in 0..5 {
            assert_eq!(sa1.solve(&model), sa2.solve(&model));
        }
    }

    #[test]
    fn metropolis_dynamics_also_finds_planted_state() {
        let (model, target, opt) = planted_model();
        let mut sa = SimulatedAnnealing::new(BetaSchedule::linear(10.0), 300, 1)
            .with_dynamics(Dynamics::Metropolis);
        assert_eq!(sa.dynamics(), Dynamics::Metropolis);
        let out = sa.solve(&model);
        assert!((out.best_energy - opt).abs() < 1e-9);
        assert_eq!(out.best.to_binary(), target);
    }

    #[test]
    fn dynamics_default_is_gibbs() {
        let sa = SimulatedAnnealing::new(BetaSchedule::linear(1.0), 1, 0);
        assert_eq!(sa.dynamics(), Dynamics::Gibbs);
    }

    #[test]
    fn mcs_accounting() {
        let (model, _, _) = planted_model();
        let mut sa = SimulatedAnnealing::new(BetaSchedule::linear(5.0), 123, 0);
        assert_eq!(sa.mcs_per_solve(6), 123);
        assert_eq!(sa.solve(&model).mcs, 123);
    }

    #[test]
    fn controlled_solve_with_idle_controller_matches_solve() {
        let (model, _, _) = planted_model();
        let mut plain = SimulatedAnnealing::new(BetaSchedule::linear(5.0), 60, 9);
        let mut controlled = SimulatedAnnealing::new(BetaSchedule::linear(5.0), 60, 9);
        let ctrl = RunController::unlimited();
        for _ in 0..3 {
            let a = plain.solve(&model);
            let b = controlled.solve_controlled(&model, &ctrl);
            assert_eq!(b.status, OutcomeKind::Completed);
            assert!(b.state.is_none());
            assert_eq!(b.outcome, a);
        }
    }

    #[test]
    fn interrupted_resume_is_bit_identical() {
        let (model, _, _) = planted_model();
        let oracle = SimulatedAnnealing::new(BetaSchedule::linear(8.0), 80, 3).solve(&model);
        for stop in [1u64, 7, 39, 79] {
            let mut first = SimulatedAnnealing::new(BetaSchedule::linear(8.0), 80, 3);
            let ctrl = RunController::unlimited()
                .with_stop_after(stop)
                .with_poll_interval(1);
            let cut = first.solve_controlled(&model, &ctrl);
            assert_eq!(cut.status, OutcomeKind::Checkpointed, "stop {stop}");
            let state = cut.state.expect("checkpointed runs carry state");
            assert_eq!(state.next_step, stop);
            assert_eq!(cut.outcome.mcs, stop);
            let mut second = SimulatedAnnealing::new(BetaSchedule::linear(8.0), 80, 3);
            let resumed = second
                .resume_controlled(&model, &state, &RunController::unlimited())
                .expect("state fits the solver");
            assert_eq!(resumed.status, OutcomeKind::Completed);
            assert_eq!(resumed.outcome, oracle, "stop {stop}");
        }
    }

    #[test]
    fn stop_on_the_final_sweep_is_a_completion() {
        let (model, _, _) = planted_model();
        let oracle = SimulatedAnnealing::new(BetaSchedule::linear(8.0), 40, 3).solve(&model);
        let mut sa = SimulatedAnnealing::new(BetaSchedule::linear(8.0), 40, 3);
        let ctrl = RunController::unlimited()
            .with_stop_after(40)
            .with_poll_interval(1);
        let run = sa.solve_controlled(&model, &ctrl);
        assert_eq!(run.status, OutcomeKind::Completed);
        assert_eq!(run.outcome, oracle);
    }

    #[test]
    fn cancel_and_deadline_return_partial_outcomes() {
        let (model, _, _) = planted_model();
        let cancel = RunController::unlimited().with_poll_interval(1);
        cancel.request_cancel();
        let mut sa = SimulatedAnnealing::new(BetaSchedule::linear(8.0), 50, 3);
        let run = sa.solve_controlled(&model, &cancel);
        assert_eq!(run.status, OutcomeKind::Cancelled);
        assert!(run.state.is_none());
        assert_eq!(run.outcome.mcs, 1);
        assert!((model.energy(&run.outcome.best) - run.outcome.best_energy).abs() < 1e-12);

        let expired = RunController::unlimited()
            .with_poll_interval(1)
            .with_deadline(std::time::Instant::now() - std::time::Duration::from_secs(1));
        let mut sa = SimulatedAnnealing::new(BetaSchedule::linear(8.0), 50, 3);
        let run = sa.solve_controlled(&model, &expired);
        assert_eq!(run.status, OutcomeKind::DeadlineExceeded);
        assert_eq!(run.outcome.mcs, 1);
    }

    #[test]
    fn resume_rejects_a_step_beyond_the_schedule() {
        let (model, _, _) = planted_model();
        let mut sa = SimulatedAnnealing::new(BetaSchedule::linear(8.0), 20, 3);
        let ctrl = RunController::unlimited()
            .with_stop_after(5)
            .with_poll_interval(1);
        let mut state = sa
            .solve_controlled(&model, &ctrl)
            .state
            .expect("checkpointed");
        state.next_step = 21;
        let mut short = SimulatedAnnealing::new(BetaSchedule::linear(8.0), 20, 3);
        assert!(matches!(
            short.resume_controlled(&model, &state, &RunController::unlimited()),
            Err(CheckpointError::Malformed(_))
        ));
    }
}
