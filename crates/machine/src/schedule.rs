use serde::{Deserialize, Serialize};

/// An inverse-temperature (β) annealing schedule over a run of `total` sweeps.
///
/// The paper anneals the p-bits "with a linear β-schedule swept from 0 to
/// β_max" within each SA run; [`BetaSchedule::linear`] reproduces that.
/// Geometric and constant schedules are provided for the schedule ablation
/// and for fixed-temperature sampling (e.g. parallel-tempering replicas).
///
/// ```
/// use saim_machine::BetaSchedule;
///
/// let s = BetaSchedule::linear(10.0);
/// assert_eq!(s.beta_at(0, 101), 0.0);
/// assert_eq!(s.beta_at(100, 101), 10.0);
/// assert_eq!(s.beta_at(50, 101), 5.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum BetaSchedule {
    /// β rises linearly from 0 at the first sweep to `beta_max` at the last.
    Linear {
        /// Final inverse temperature.
        beta_max: f64,
    },
    /// β rises geometrically from `beta_min` to `beta_max`.
    Geometric {
        /// Starting inverse temperature (must be > 0).
        beta_min: f64,
        /// Final inverse temperature.
        beta_max: f64,
    },
    /// Constant β for every sweep.
    Constant {
        /// The fixed inverse temperature.
        beta: f64,
    },
}

impl BetaSchedule {
    /// The paper's schedule: linear from 0 to `beta_max`.
    ///
    /// # Panics
    ///
    /// Panics if `beta_max` is negative or non-finite.
    pub fn linear(beta_max: f64) -> Self {
        assert!(
            beta_max.is_finite() && beta_max >= 0.0,
            "beta_max must be finite and non-negative"
        );
        BetaSchedule::Linear { beta_max }
    }

    /// Geometric schedule from `beta_min` to `beta_max`.
    ///
    /// # Panics
    ///
    /// Panics unless `0 < beta_min <= beta_max` and both are finite.
    pub fn geometric(beta_min: f64, beta_max: f64) -> Self {
        assert!(
            beta_min.is_finite() && beta_max.is_finite() && beta_min > 0.0 && beta_min <= beta_max,
            "geometric schedule requires 0 < beta_min <= beta_max"
        );
        BetaSchedule::Geometric { beta_min, beta_max }
    }

    /// Constant-temperature schedule.
    ///
    /// # Panics
    ///
    /// Panics if `beta` is negative or non-finite.
    pub fn constant(beta: f64) -> Self {
        assert!(
            beta.is_finite() && beta >= 0.0,
            "beta must be finite and non-negative"
        );
        BetaSchedule::Constant { beta }
    }

    /// β for sweep `step` (0-based) out of `total` sweeps.
    ///
    /// For one-sweep runs the schedule evaluates at its endpoint.
    ///
    /// # Panics
    ///
    /// Panics if `total == 0` or `step >= total`.
    pub fn beta_at(&self, step: usize, total: usize) -> f64 {
        assert!(total > 0, "schedule needs at least one sweep");
        assert!(step < total, "step beyond schedule length");
        let frac = if total == 1 {
            1.0
        } else {
            step as f64 / (total - 1) as f64
        };
        match *self {
            BetaSchedule::Linear { beta_max } => beta_max * frac,
            BetaSchedule::Geometric { beta_min, beta_max } => {
                beta_min * (beta_max / beta_min).powf(frac)
            }
            BetaSchedule::Constant { beta } => beta,
        }
    }

    /// The final (largest) β of the schedule.
    pub fn beta_final(&self) -> f64 {
        match *self {
            BetaSchedule::Linear { beta_max } => beta_max,
            BetaSchedule::Geometric { beta_max, .. } => beta_max,
            BetaSchedule::Constant { beta } => beta,
        }
    }
}

impl Default for BetaSchedule {
    /// The paper's QKP default: linear from 0 to β_max = 10.
    fn default() -> Self {
        BetaSchedule::linear(10.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn linear_endpoints_and_midpoint() {
        let s = BetaSchedule::linear(8.0);
        assert_eq!(s.beta_at(0, 5), 0.0);
        assert_eq!(s.beta_at(4, 5), 8.0);
        assert_eq!(s.beta_at(2, 5), 4.0);
    }

    #[test]
    fn geometric_endpoints() {
        let s = BetaSchedule::geometric(0.1, 10.0);
        assert!((s.beta_at(0, 3) - 0.1).abs() < 1e-12);
        assert!((s.beta_at(2, 3) - 10.0).abs() < 1e-12);
        assert!((s.beta_at(1, 3) - 1.0).abs() < 1e-12); // geometric mean
    }

    #[test]
    fn geometric_is_monotone() {
        let s = BetaSchedule::geometric(0.5, 50.0);
        let mut prev = 0.0;
        for step in 0..100 {
            let b = s.beta_at(step, 100);
            assert!(b > prev);
            prev = b;
        }
    }

    #[test]
    fn constant_is_flat() {
        let s = BetaSchedule::constant(3.0);
        for step in 0..10 {
            assert_eq!(s.beta_at(step, 10), 3.0);
        }
    }

    #[test]
    fn single_sweep_run_uses_endpoint() {
        assert_eq!(BetaSchedule::linear(10.0).beta_at(0, 1), 10.0);
        assert_eq!(BetaSchedule::geometric(1.0, 4.0).beta_at(0, 1), 4.0);
    }

    #[test]
    fn default_matches_paper_qkp() {
        assert_eq!(BetaSchedule::default(), BetaSchedule::linear(10.0));
    }

    #[test]
    #[should_panic(expected = "beta_max must be")]
    fn rejects_negative_beta() {
        let _ = BetaSchedule::linear(-1.0);
    }

    #[test]
    #[should_panic(expected = "geometric schedule requires")]
    fn rejects_zero_beta_min() {
        let _ = BetaSchedule::geometric(0.0, 1.0);
    }
}
