//! Batched multi-instance job service: many models × many runs flowing
//! through one scheduler.
//!
//! The engines below this layer parallelize *one* solve — replicas across
//! threads ([`EnsembleAnnealer`]), ladder rounds across threads
//! ([`ParallelTempering`]). A benchmark grid, a tuning sweep, or a network
//! front-end instead has **many independent jobs** of mixed shapes and
//! sizes, and wants them flowing through a fixed worker budget with
//! backpressure. That is this module: a job-queue facade over the
//! [`parallel`](crate::parallel) primitives.
//!
//! # Scheduling layout
//!
//! - A [`JobService`] owns one **persistent worker pool** (spawned once at
//!   [`JobService::start`], joined on drop) and one bounded FIFO job queue
//!   ([`BoundedQueue`]) of depth [`ServiceConfig::queue_depth`].
//! - [`JobService::submit`] blocks while the queue is full;
//!   [`JobService::try_submit`] returns [`SubmitError::Full`] instead —
//!   the two backpressure paths.
//! - Workers pop jobs dynamically (whoever is free takes the oldest job)
//!   and stream results back **in completion order**, each tagged with its
//!   **submission index** ([`JobResult::submitted`]), so callers can either
//!   consume results as they land ([`JobService::recv`]) or fold them back
//!   into submission order ([`JobService::drain`]).
//!
//! # Stream derivation and determinism
//!
//! The service adds **no randomness of its own**: every job carries its own
//! root seed, every solver derives its internal SplitMix64 streams from
//! that seed exactly as it would in a direct call, and no RNG is ever
//! shared between jobs. Scheduling therefore affects only *when* a job
//! runs, never *what* it computes: a job's result is bit-identical to
//! calling the underlying engine directly with the same seed, **for any
//! worker count, queue depth, or submission interleaving**
//! (`tests/service_replay.rs` asserts this across worker counts 1/2/8 and
//! shuffled submission orders).
//!
//! Worker threads are marked as pool workers, so a job whose solver asks
//! for auto-sized threading (`threads: 0`) runs its sweeps inline instead
//! of spawning a nested all-cores pool — with many jobs in flight the
//! parallelism is already at the job level, and results are
//! thread-count-invariant either way.
//!
//! # Fault tolerance
//!
//! Three failure paths are first-class values, never stream teardowns:
//!
//! - **A panicking job** reports as a typed [`JobFailure`] in its own slot
//!   of the result stream ([`JobService::recv`]/[`JobService::drain`]);
//!   every other job's result is still delivered.
//! - **Cancellation and deadlines**: a [`ControlledService`] runs every job
//!   under one shared [`RunController`], so the owner can stop the fleet —
//!   each job returns a well-formed partial [`JobOutcome`] (tagged by
//!   [`JobOutcome::outcome_kind`]) within one poll interval.
//! - **Graceful drain**: [`ControlledService::shutdown_to`] checkpoints
//!   in-flight jobs and persists still-queued specs into a directory;
//!   [`ControlledService::resume`] re-submits them such that every
//!   completed resumed job is **bit-identical** to a never-interrupted run
//!   at any worker count (see [`crate::checkpoint`] for the format and the
//!   capture rules that make this hold).
//!
//! # Wire schema
//!
//! [`JobSpec`] and [`JobOutcome`] are the serialized forms (schema version
//! [`SCHEMA_VERSION`]) a network front-end would speak: a spec carries the
//! QUBO payload, solver selection ([`SolverSpec`]), seed and an instance
//! digest; an outcome echoes the identifiers and reports energies, states,
//! sweep counts and wall-clock timing. Parsing is **strict**:
//! schema-version mismatches and unknown fields (at the envelope, the
//! solver selection, and the model's top-level fields) are rejected with a
//! typed [`SchemaError`], and `serialize → parse → re-serialize` is
//! byte-stable (proptests in `crates/machine/tests/schema_roundtrip.rs`).
//!
//! ```
//! use saim_ising::QuboBuilder;
//! use saim_machine::service::{solver_service, JobSpec, ServiceConfig, SolverSpec};
//! use saim_machine::EnsembleConfig;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut b = QuboBuilder::new(3);
//! for i in 0..3 { b.add_linear(i, -1.0)?; }
//! let model = b.build();
//!
//! let spec = SolverSpec::Ensemble(EnsembleConfig {
//!     replicas: 2,
//!     mcs_per_run: 50,
//!     ..EnsembleConfig::default()
//! });
//! let mut service = solver_service(ServiceConfig::default());
//! for seed in 0..4u64 {
//!     service.submit(JobSpec::new(seed, model.clone(), spec.clone(), seed));
//! }
//! let outcomes = service.drain(); // submission order
//! assert_eq!(outcomes.len(), 4);
//! let first = outcomes[0].as_ref().expect("the job ran to completion");
//! assert!((first.best_energy - (-3.0)).abs() < 1e-9);
//! # Ok(())
//! # }
//! ```

use crate::checkpoint::{Checkpoint, CheckpointError, EngineState, OutcomeKind, RunController};
use crate::descent::GreedyDescent;
use crate::ensemble::{EnsembleAnnealer, EnsembleConfig};
use crate::parallel::{self, BoundedQueue, PushError};
use crate::pt::{ParallelTempering, PtConfig};
use crate::solver::{IsingSolver, SolveOutcome};
use saim_ising::{Qubo, SpinState};
use serde::{Deserialize, Serialize, Value};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::{Path, PathBuf};
use std::sync::{mpsc, Arc};
use std::time::Instant;

// ------------------------------------------------------------- the service

/// Configuration of a [`JobService`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ServiceConfig {
    /// Worker threads executing jobs; `0` means all available cores —
    /// except when the service is constructed from inside another pool's
    /// worker, where it means one (no nested all-cores pools, exactly like
    /// the auto-sized fork–join primitives). The worker count affects
    /// wall-clock only, never results.
    pub workers: usize,
    /// Bound on jobs waiting in the queue (excluding jobs already running).
    /// [`JobService::submit`] blocks — and [`JobService::try_submit`]
    /// returns [`SubmitError::Full`] — while this many jobs are waiting.
    pub queue_depth: usize,
}

impl Default for ServiceConfig {
    /// All cores, with a queue deep enough that grid-style submit loops
    /// rarely block.
    fn default() -> Self {
        ServiceConfig {
            workers: 0,
            queue_depth: 128,
        }
    }
}

impl ServiceConfig {
    fn validate(&self) {
        assert!(self.queue_depth > 0, "queue depth must be positive");
    }
}

/// Why a [`JobService::try_submit`] was rejected; the job comes back to the
/// caller.
#[derive(Debug)]
pub enum SubmitError<J> {
    /// [`ServiceConfig::queue_depth`] jobs were already waiting. Retry
    /// later, or use the blocking [`JobService::submit`].
    Full(J),
}

/// One finished job, tagged with its submission index.
#[derive(Debug, Clone, PartialEq)]
pub struct JobResult<R> {
    /// The index [`JobService::submit`]/[`JobService::try_submit`] returned
    /// for this job (0-based, in submission order).
    pub submitted: u64,
    /// What the executor produced.
    pub value: R,
}

/// The identifying slice of a [`JobSpec`] — job id, instance digest, solver
/// selection — without the model payload. Rides on [`JobFailure`] so a
/// failure can be correlated with what was asked for (by a network client,
/// a result store, a log line) without keeping a side table of submissions.
#[derive(Debug, Clone, PartialEq)]
pub struct JobSummary {
    /// The spec's client-chosen job identifier.
    pub job: u64,
    /// The spec's instance digest (`0` when unknown).
    pub instance_digest: u64,
    /// The spec's solver selection and configuration.
    pub solver: SolverSpec,
}

impl JobSummary {
    /// Extracts the summary from a spec.
    pub fn of(spec: &JobSpec) -> Self {
        JobSummary {
            job: spec.job,
            instance_digest: spec.instance_digest,
            solver: spec.solver.clone(),
        }
    }
}

/// A job whose execution panicked, reported as a **value** in the result
/// stream: one poisoned job must not tear down the service or strand the
/// other jobs' results. (The old behavior — re-raising the payload at the
/// caller's next `recv` — killed the whole stream; a pinning test asserts
/// it is gone.)
#[derive(Debug, Clone, PartialEq)]
pub struct JobFailure {
    /// The failed job's submission index.
    pub submitted: u64,
    /// The panic message, when it was a string (the overwhelmingly common
    /// case); a placeholder otherwise.
    pub message: String,
    /// What the failed job *was* — captured before execution, so it is
    /// present even though the job itself never produced an outcome.
    /// `None` only for generic services whose job type has no spec (see
    /// [`JobService::start`]); [`solver_service`] and [`ControlledService`]
    /// always fill it.
    pub origin: Option<JobSummary>,
}

impl std::fmt::Display for JobFailure {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match &self.origin {
            Some(origin) => write!(
                f,
                "job {} (id {}, digest {:016x}) panicked: {}",
                self.submitted, origin.job, origin.instance_digest, self.message
            ),
            None => write!(f, "job {} panicked: {}", self.submitted, self.message),
        }
    }
}

impl std::error::Error for JobFailure {}

/// Extracts a printable message from a caught panic payload.
pub(crate) fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(text) = payload.downcast_ref::<String>() {
        text.clone()
    } else if let Some(text) = payload.downcast_ref::<&'static str>() {
        (*text).to_string()
    } else {
        "job panicked with a non-string payload".to_string()
    }
}

type TaggedResult<R> = (u64, Option<JobSummary>, std::thread::Result<R>);

/// How a worker summarizes a job before running it, so a panic can still
/// report *what* failed (see [`JobFailure::origin`]).
type DescribeFn<J> = dyn Fn(&J) -> Option<JobSummary> + Send + Sync;

/// A persistent worker pool executing independent jobs from a bounded
/// queue, streaming results back in completion order.
///
/// Generic over the job payload `J` and result `R`; the executor closure is
/// fixed at [`JobService::start`]. The solver-level instantiation — specs
/// in, outcomes out — is [`solver_service`]; `SaimRunner::run_jobs` in
/// `saim-core` and the bench harness's instance grids build their own
/// instantiations over the same machinery.
///
/// The handle is single-owner (`&mut self` submission/receive); concurrency
/// lives in the workers. Dropping the service discards jobs still waiting
/// in the queue, lets jobs already running finish, and joins every worker —
/// no threads are leaked and nothing deadlocks, even mid-stream.
pub struct JobService<J, R> {
    queue: Arc<BoundedQueue<(u64, J)>>,
    results: mpsc::Receiver<TaggedResult<R>>,
    workers: Vec<std::thread::JoinHandle<()>>,
    submitted: u64,
    delivered: u64,
    /// Jobs discarded by [`JobService::discard_pending`] before a worker
    /// picked them up; they will never produce a result.
    cancelled: u64,
}

impl<J: Send + 'static, R: Send + 'static> JobService<J, R> {
    /// Spawns the worker pool; every job goes through `run`. Failures carry
    /// no [`JobFailure::origin`] — the generic service cannot know what a
    /// `J` is; use [`JobService::start_described`] to attach one.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid (`queue_depth == 0`).
    pub fn start<F>(config: ServiceConfig, run: F) -> Self
    where
        F: Fn(J) -> R + Send + Sync + 'static,
    {
        Self::start_described(config, run, |_| None)
    }

    /// Like [`JobService::start`], but workers capture `describe(&job)`
    /// **before** executing it, so a panicking job's [`JobFailure`] still
    /// reports what the job was ([`JobFailure::origin`]).
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid (`queue_depth == 0`).
    pub fn start_described<F, D>(config: ServiceConfig, run: F, describe: D) -> Self
    where
        F: Fn(J) -> R + Send + Sync + 'static,
        D: Fn(&J) -> Option<JobSummary> + Send + Sync + 'static,
    {
        config.validate();
        // `workers: 0` resolves like every auto-sized primitive: all cores,
        // except from inside another pool's worker, where it means one —
        // a service constructed inside a service job must not multiply the
        // machine's thread count
        let worker_count = parallel::resolve_pool_workers(config.workers);
        let queue = Arc::new(BoundedQueue::new(config.queue_depth));
        let (tx, results) = mpsc::channel::<TaggedResult<R>>();
        let run = Arc::new(run);
        let describe: Arc<DescribeFn<J>> = Arc::new(describe);
        let workers = (0..worker_count)
            .map(|_| {
                let queue = Arc::clone(&queue);
                let tx = tx.clone();
                let run = Arc::clone(&run);
                let describe = Arc::clone(&describe);
                std::thread::spawn(move || {
                    parallel::mark_pool_worker();
                    while let Some((index, job)) = queue.pop() {
                        // summarized before running: a panicked job can no
                        // longer say what it was, so capture that up front
                        let origin = describe(&job);
                        // a panicking job must not kill the worker or strand
                        // a receiver: ship the payload back, where it becomes
                        // that job's typed JobFailure in the result stream
                        let result = catch_unwind(AssertUnwindSafe(|| run(job)));
                        // the send only fails when the service (and its
                        // receiver) is already being dropped — the result is
                        // unobservable then by construction
                        let _ = tx.send((index, origin, result));
                    }
                })
            })
            .collect();
        JobService {
            queue,
            results,
            workers,
            submitted: 0,
            delivered: 0,
            cancelled: 0,
        }
    }

    /// Enqueues a job, blocking while the queue is full, and returns its
    /// submission index.
    pub fn submit(&mut self, job: J) -> u64 {
        let index = self.submitted;
        self.queue
            .push((index, job))
            .unwrap_or_else(|_| unreachable!("the queue closes only on drop"));
        self.submitted += 1;
        index
    }

    /// Enqueues a job only if a queue slot is free right now.
    ///
    /// # Errors
    ///
    /// Returns [`SubmitError::Full`] — with the job handed back — when
    /// [`ServiceConfig::queue_depth`] jobs are already waiting.
    pub fn try_submit(&mut self, job: J) -> Result<u64, SubmitError<J>> {
        let index = self.submitted;
        match self.queue.try_push((index, job)) {
            Ok(()) => {
                self.submitted += 1;
                Ok(index)
            }
            Err(PushError::Full((_, job))) => Err(SubmitError::Full(job)),
            Err(PushError::Closed(_)) => unreachable!("the queue closes only on drop"),
        }
    }

    /// The next finished job in **completion order**, blocking until one is
    /// ready. Returns `None` when every submitted job's result has already
    /// been delivered.
    ///
    /// A job whose execution panicked reports as `Err(`[`JobFailure`]`)` —
    /// a value, not a re-raise — so the stream keeps flowing and every
    /// other job's result is still delivered.
    pub fn recv(&mut self) -> Option<Result<JobResult<R>, JobFailure>> {
        if self.outstanding() == 0 {
            return None;
        }
        let (submitted, origin, result) = self
            .results
            .recv()
            .expect("workers outlive outstanding jobs");
        self.delivered += 1;
        Some(match result {
            Ok(value) => Ok(JobResult { submitted, value }),
            Err(payload) => Err(JobFailure {
                submitted,
                message: panic_message(payload.as_ref()),
                origin,
            }),
        })
    }

    /// Collects every outstanding result and returns the per-job
    /// `Ok(value)` / `Err(`[`JobFailure`]`)` entries **in submission order**
    /// (results already taken via [`JobService::recv`] are not replayed).
    /// One panicked job costs exactly its own slot, never the stream.
    pub fn drain(&mut self) -> Vec<Result<R, JobFailure>> {
        let mut tagged: Vec<(u64, Result<R, JobFailure>)> =
            Vec::with_capacity(self.outstanding() as usize);
        while let Some(result) = self.recv() {
            tagged.push(match result {
                Ok(ok) => (ok.submitted, Ok(ok.value)),
                Err(failure) => (failure.submitted, Err(failure)),
            });
        }
        tagged.sort_by_key(|(submitted, _)| *submitted);
        tagged.into_iter().map(|(_, value)| value).collect()
    }

    /// Discards every job still waiting in the queue (jobs already picked
    /// up by a worker are unaffected) and returns how many were dropped.
    /// Discarded jobs never produce a result; the stream's bookkeeping is
    /// adjusted so [`JobService::recv`] and [`JobService::drain`] still
    /// terminate exactly when every *surviving* job has reported.
    pub fn discard_pending(&mut self) -> u64 {
        let dropped = self.queue.clear() as u64;
        self.cancelled += dropped;
        dropped
    }

    /// Jobs submitted whose results have not been delivered yet (cancelled
    /// jobs excluded — they will never report).
    pub fn outstanding(&self) -> u64 {
        self.submitted - self.delivered - self.cancelled
    }

    /// Total jobs submitted over the service's lifetime, including any
    /// later discarded by [`JobService::discard_pending`].
    pub fn submitted(&self) -> u64 {
        self.submitted
    }

    /// Number of worker threads in the pool.
    pub fn workers(&self) -> usize {
        self.workers.len()
    }
}

impl<J, R> Drop for JobService<J, R> {
    /// Discards jobs still waiting in the queue, lets running jobs finish,
    /// and joins every worker thread.
    fn drop(&mut self) {
        self.queue.close_and_clear();
        for handle in self.workers.drain(..) {
            // worker bodies never panic (jobs are caught); a join error here
            // would mean the runtime itself failed, and drop must not panic
            let _ = handle.join();
        }
    }
}

// ------------------------------------------------------------- wire schema

/// Version tag every [`JobSpec`]/[`JobOutcome`] carries. Bump on any field
/// change; parsers reject other versions with
/// [`SchemaError::VersionMismatch`] instead of guessing. Version 2 added
/// [`JobOutcome::outcome_kind`] (partial results from cancelled,
/// deadline-stopped, or checkpointed runs); version 3 added the
/// queue-depth and ETA fields to the front-end's `stats` frame (the spec
/// and outcome shapes are unchanged, but the whole protocol versions as
/// one unit).
pub const SCHEMA_VERSION: u32 = 3;

/// Which solver a job runs, with its full configuration. The seed lives on
/// the [`JobSpec`], not here, so one spec can be fanned out over seeds.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum SolverSpec {
    /// A replica-ensemble annealing run ([`EnsembleAnnealer`]); the job is
    /// bit-identical to `EnsembleAnnealer::new(config, seed).solve(&model)`.
    Ensemble(EnsembleConfig),
    /// A parallel-tempering solve ([`ParallelTempering`]); bit-identical to
    /// `ParallelTempering::new(config, seed).solve(&model)`.
    Pt(PtConfig),
    /// Greedy single-flip descent ([`GreedyDescent`]); bit-identical to
    /// `GreedyDescent::new(seed).with_max_sweeps(max_sweeps).solve(&model)`.
    Descent {
        /// Cap on greedy sweeps before giving up (descent usually
        /// terminates much earlier at a 1-flip local optimum).
        max_sweeps: usize,
    },
}

/// A serialized job: everything a worker (local or remote) needs to produce
/// the deterministic [`JobOutcome`].
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct JobSpec {
    /// Wire-schema version; always [`SCHEMA_VERSION`] for specs built here.
    pub schema: u32,
    /// Client-chosen job identifier, echoed verbatim in the outcome so
    /// completion-order streams can be re-associated.
    pub job: u64,
    /// Digest of the instance this model encodes (e.g.
    /// `QkpInstance::digest` from `saim-knapsack`); `0` when unknown. Lets
    /// a result store detect payload mix-ups without shipping instances.
    pub instance_digest: u64,
    /// Root seed of the job's RNG streams. Jobs never share streams: two
    /// specs with different seeds are fully independent, and the same spec
    /// replays bit-identically anywhere.
    pub seed: u64,
    /// Solver selection and configuration.
    pub solver: SolverSpec,
    /// The QUBO payload (converted with [`Qubo::to_ising`] at run time,
    /// which is itself deterministic).
    pub model: Qubo,
}

impl JobSpec {
    /// Builds a spec at the current [`SCHEMA_VERSION`] with no instance
    /// digest.
    pub fn new(job: u64, model: Qubo, solver: SolverSpec, seed: u64) -> Self {
        JobSpec {
            schema: SCHEMA_VERSION,
            job,
            instance_digest: 0,
            seed,
            solver,
            model,
        }
    }

    /// Attaches an instance digest (see [`JobSpec::instance_digest`]).
    pub fn with_instance_digest(mut self, digest: u64) -> Self {
        self.instance_digest = digest;
        self
    }

    /// Runs the job to completion on the calling thread — the canonical
    /// executor [`solver_service`] workers invoke. Bit-identical to the
    /// direct engine call each [`SolverSpec`] variant documents.
    ///
    /// # Panics
    ///
    /// Panics if the solver configuration is invalid (the same conditions
    /// as constructing the solver directly). Inside a service the panic
    /// becomes the job's typed [`JobFailure`] in the result stream.
    pub fn run(&self) -> JobOutcome {
        let started = Instant::now();
        let model = self.model.to_ising();
        let solved = match &self.solver {
            SolverSpec::Ensemble(config) => EnsembleAnnealer::new(*config, self.seed).solve(&model),
            SolverSpec::Pt(config) => ParallelTempering::new(*config, self.seed).solve(&model),
            SolverSpec::Descent { max_sweeps } => GreedyDescent::new(self.seed)
                .with_max_sweeps(*max_sweeps)
                .solve(&model),
        };
        JobOutcome::new(self, &solved, started.elapsed())
    }

    /// Like [`JobSpec::run`], but under a [`RunController`]: the run can be
    /// cancelled, timed out, or stopped at a checkpoint, returning a
    /// partial [`JobOutcome`] (tagged via [`JobOutcome::outcome_kind`]) and
    /// — when checkpointed — the resumable [`Checkpoint`]. With an idle
    /// controller the outcome is bit-identical to [`JobSpec::run`].
    pub fn run_controlled(&self, ctrl: &RunController) -> ControlledOutcome {
        let started = Instant::now();
        let model = self.model.to_ising();
        let (solved, status, engine) = match &self.solver {
            SolverSpec::Ensemble(config) => {
                let run = EnsembleAnnealer::new(*config, self.seed).solve_controlled(&model, ctrl);
                (
                    run.outcome,
                    run.status,
                    run.state.map(EngineState::Ensemble),
                )
            }
            SolverSpec::Pt(config) => {
                let run = ParallelTempering::new(*config, self.seed).solve_controlled(&model, ctrl);
                (run.outcome, run.status, run.state.map(EngineState::Pt))
            }
            SolverSpec::Descent { max_sweeps } => {
                let run = GreedyDescent::new(self.seed)
                    .with_max_sweeps(*max_sweeps)
                    .solve_controlled(&model, ctrl);
                (run.outcome, run.status, run.state.map(EngineState::Descent))
            }
        };
        ControlledOutcome {
            outcome: JobOutcome::new(self, &solved, started.elapsed()).with_outcome_kind(status),
            checkpoint: engine.map(|e| Box::new(Checkpoint::new(self.clone(), e))),
        }
    }

    /// Continues this job from a captured [`EngineState`] under a
    /// [`RunController`]. A resumed run that completes is bit-identical —
    /// same energies, states, and consumed RNG words — to one that was
    /// never interrupted; [`JobOutcome::mcs`] then reports the full
    /// schedule, not just the sweeps after the cut.
    ///
    /// # Errors
    ///
    /// [`CheckpointError::Malformed`] when the engine state's variant does
    /// not match [`JobSpec::solver`] or its image fails the engine's
    /// validation (wrong model size, schedule position out of range, …).
    pub fn resume_controlled(
        &self,
        engine: &EngineState,
        ctrl: &RunController,
    ) -> Result<ControlledOutcome, CheckpointError> {
        let started = Instant::now();
        let model = self.model.to_ising();
        let (solved, status, engine) = match (&self.solver, engine) {
            (SolverSpec::Ensemble(config), EngineState::Ensemble(state)) => {
                let run = EnsembleAnnealer::new(*config, self.seed)
                    .resume_controlled(&model, state, ctrl)?;
                (
                    run.outcome,
                    run.status,
                    run.state.map(EngineState::Ensemble),
                )
            }
            (SolverSpec::Pt(config), EngineState::Pt(state)) => {
                let run = ParallelTempering::new(*config, self.seed)
                    .resume_controlled(&model, state, ctrl)?;
                (run.outcome, run.status, run.state.map(EngineState::Pt))
            }
            (SolverSpec::Descent { max_sweeps }, EngineState::Descent(state)) => {
                let run = GreedyDescent::new(self.seed)
                    .with_max_sweeps(*max_sweeps)
                    .resume_controlled(&model, state, ctrl)?;
                (run.outcome, run.status, run.state.map(EngineState::Descent))
            }
            _ => {
                return Err(CheckpointError::Malformed(
                    "engine state does not match the spec's solver selection".into(),
                ))
            }
        };
        Ok(ControlledOutcome {
            outcome: JobOutcome::new(self, &solved, started.elapsed()).with_outcome_kind(status),
            checkpoint: engine.map(|e| Box::new(Checkpoint::new(self.clone(), e))),
        })
    }

    /// Serializes to compact JSON with a fixed field order, so equal specs
    /// always yield identical bytes.
    pub fn to_json(&self) -> String {
        serde_json::to_string(self).expect("spec serialization is infallible")
    }

    /// Strictly parses a spec from JSON.
    ///
    /// Strictness covers the envelope (top-level fields), the solver
    /// selection (variant tag and every solver-config field set), and the
    /// model's top-level fields; trees below that (the coupling matrix,
    /// the β schedule payload) are shape-validated by their deserializers,
    /// which reject missing or mistyped fields and unknown enum variants.
    ///
    /// # Errors
    ///
    /// [`SchemaError::Json`] on malformed JSON,
    /// [`SchemaError::VersionMismatch`] when `schema` ≠ [`SCHEMA_VERSION`]
    /// (checked first, so a future version's new fields read as a version
    /// problem), [`SchemaError::UnknownField`] on any unrecognized field
    /// at the strict depths above, and [`SchemaError::Malformed`] on
    /// missing fields or shape mismatches.
    pub fn from_json(text: &str) -> Result<Self, SchemaError> {
        Self::from_value_strict(&parse_json(text)?)
    }

    /// [`JobSpec::from_json`] on an already-parsed [`Value`] — the network
    /// front-end embeds specs inside frame envelopes and must apply the
    /// identical strictness to the nested tree.
    pub(crate) fn from_value_strict(value: &Value) -> Result<Self, SchemaError> {
        check_version(value)?;
        check_known_fields(
            value,
            &[
                "schema",
                "job",
                "instance_digest",
                "seed",
                "solver",
                "model",
            ],
        )?;
        check_solver_fields(
            value
                .field("solver")
                .map_err(|e| SchemaError::Malformed(e.to_string()))?,
        )?;
        if let Ok(model) = value.field("model") {
            // Qubo's serde shape; the round-trip tests pin it, so drift in
            // saim-ising surfaces here rather than as silent acceptance
            check_known_fields(model, &["pairs", "linear", "offset"])?;
        }
        Ok(JobSpec {
            schema: SCHEMA_VERSION,
            job: parse_field(value, "job")?,
            instance_digest: parse_field(value, "instance_digest")?,
            seed: parse_field(value, "seed")?,
            solver: parse_field(value, "solver")?,
            model: parse_field(value, "model")?,
        })
    }
}

/// A serialized result: identifiers echoed from the spec plus everything
/// the solve produced.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct JobOutcome {
    /// Wire-schema version; always [`SCHEMA_VERSION`] for outcomes built
    /// here.
    pub schema: u32,
    /// The spec's job identifier, echoed.
    pub job: u64,
    /// The spec's instance digest, echoed.
    pub instance_digest: u64,
    /// How the run ended: [`OutcomeKind::Completed`] for a full solve, or
    /// the stop reason of a partial one (cancelled, past its deadline, or
    /// stopped at a checkpoint). Partial outcomes report the best-so-far
    /// and the in-progress state, with [`JobOutcome::mcs`] counting only
    /// the sweeps actually consumed.
    pub outcome_kind: OutcomeKind,
    /// Energy of the best state observed during the run.
    pub best_energy: f64,
    /// Energy of the final sample (what a hardware IM reads out).
    pub last_energy: f64,
    /// Monte Carlo sweeps consumed, summed over replicas.
    pub mcs: u64,
    /// Wall-clock nanoseconds the solve took on its worker. The **only**
    /// machine-dependent field — compare [`JobOutcome::canonical`] forms
    /// when checking determinism.
    pub elapsed_ns: u64,
    /// The lowest-energy state observed.
    pub best: SpinState,
    /// The final sample.
    pub last: SpinState,
}

impl JobOutcome {
    /// Assembles the outcome for `spec` from a solver's [`SolveOutcome`].
    /// Public so replay tests can build the direct-call oracle through the
    /// exact same constructor the service uses.
    pub fn new(spec: &JobSpec, solved: &SolveOutcome, elapsed: std::time::Duration) -> Self {
        JobOutcome {
            schema: SCHEMA_VERSION,
            job: spec.job,
            instance_digest: spec.instance_digest,
            outcome_kind: OutcomeKind::Completed,
            best_energy: solved.best_energy,
            last_energy: solved.last_energy,
            mcs: solved.mcs,
            elapsed_ns: u64::try_from(elapsed.as_nanos()).unwrap_or(u64::MAX),
            best: solved.best.clone(),
            last: solved.last.clone(),
        }
    }

    /// The same outcome tagged with how its run actually ended (see
    /// [`JobOutcome::outcome_kind`]).
    pub fn with_outcome_kind(mut self, kind: OutcomeKind) -> Self {
        self.outcome_kind = kind;
        self
    }

    /// The terminal response for a job whose deadline passed **before any
    /// work started** — expired while still queued, shed at dequeue without
    /// spinning up an engine. [`JobOutcome::outcome_kind`] is
    /// [`OutcomeKind::DeadlineExceeded`] and [`JobOutcome::mcs`] is `0` (the
    /// marker distinguishing it from a run the deadline interrupted, which
    /// reports its partial best-so-far and the sweeps it consumed). The
    /// energy and state fields are placeholder zeros/empties — finite, so
    /// the outcome still serializes losslessly through the wire schema.
    pub fn expired(spec: &JobSpec) -> Self {
        JobOutcome {
            schema: SCHEMA_VERSION,
            job: spec.job,
            instance_digest: spec.instance_digest,
            outcome_kind: OutcomeKind::DeadlineExceeded,
            best_energy: 0.0,
            last_energy: 0.0,
            mcs: 0,
            elapsed_ns: 0,
            best: SpinState::from_values(&[]),
            last: SpinState::from_values(&[]),
        }
    }

    /// The outcome with its wall-clock timing zeroed — every remaining
    /// field is a pure function of the spec, so two canonical outcomes of
    /// the same job are equal (and serialize to identical bytes) no matter
    /// where or how they ran.
    pub fn canonical(&self) -> JobOutcome {
        JobOutcome {
            elapsed_ns: 0,
            ..self.clone()
        }
    }

    /// Serializes to compact JSON with a fixed field order.
    pub fn to_json(&self) -> String {
        serde_json::to_string(self).expect("outcome serialization is infallible")
    }

    /// Strictly parses an outcome from JSON; same error contract as
    /// [`JobSpec::from_json`].
    ///
    /// # Errors
    ///
    /// See [`JobSpec::from_json`].
    pub fn from_json(text: &str) -> Result<Self, SchemaError> {
        Self::from_value_strict(&parse_json(text)?)
    }

    /// [`JobOutcome::from_json`] on an already-parsed [`Value`]; see
    /// [`JobSpec::from_value_strict`].
    pub(crate) fn from_value_strict(value: &Value) -> Result<Self, SchemaError> {
        check_version(value)?;
        check_known_fields(
            value,
            &[
                "schema",
                "job",
                "instance_digest",
                "outcome_kind",
                "best_energy",
                "last_energy",
                "mcs",
                "elapsed_ns",
                "best",
                "last",
            ],
        )?;
        Ok(JobOutcome {
            schema: SCHEMA_VERSION,
            job: parse_field(value, "job")?,
            instance_digest: parse_field(value, "instance_digest")?,
            outcome_kind: parse_field(value, "outcome_kind")?,
            best_energy: parse_field(value, "best_energy")?,
            last_energy: parse_field(value, "last_energy")?,
            mcs: parse_field(value, "mcs")?,
            elapsed_ns: parse_field(value, "elapsed_ns")?,
            best: parse_field(value, "best")?,
            last: parse_field(value, "last")?,
        })
    }
}

/// Why a [`JobSpec`]/[`JobOutcome`] failed to parse.
#[derive(Debug, Clone, PartialEq)]
pub enum SchemaError {
    /// The input was not valid JSON.
    Json(String),
    /// The `schema` field did not match [`SCHEMA_VERSION`].
    VersionMismatch {
        /// The version the input declared.
        found: u32,
        /// The version this build speaks.
        expected: u32,
    },
    /// The input carried a field this schema version does not define — at
    /// the envelope, the solver selection, or the model's top-level fields
    /// (strict parsing: silently dropping data a client sent is worse than
    /// rejecting the message).
    UnknownField(String),
    /// A required field was missing or had the wrong shape.
    Malformed(String),
}

impl std::fmt::Display for SchemaError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SchemaError::Json(message) => write!(f, "invalid JSON: {message}"),
            SchemaError::VersionMismatch { found, expected } => {
                write!(
                    f,
                    "schema version {found} not supported (expected {expected})"
                )
            }
            SchemaError::UnknownField(name) => write!(f, "unknown field `{name}`"),
            SchemaError::Malformed(message) => write!(f, "malformed payload: {message}"),
        }
    }
}

impl std::error::Error for SchemaError {}

pub(crate) fn parse_json(text: &str) -> Result<Value, SchemaError> {
    serde_json::parse_value_str(text).map_err(|e| SchemaError::Json(e.to_string()))
}

/// Reads and checks the `schema` field — before anything else, so inputs
/// from a different schema version surface as [`SchemaError::VersionMismatch`]
/// rather than as unknown-field or shape noise.
fn check_version(value: &Value) -> Result<(), SchemaError> {
    let field = value
        .field("schema")
        .map_err(|e| SchemaError::Malformed(e.to_string()))?;
    let found = u32::from_value(field).map_err(|e| SchemaError::Malformed(e.to_string()))?;
    if found != SCHEMA_VERSION {
        return Err(SchemaError::VersionMismatch {
            found,
            expected: SCHEMA_VERSION,
        });
    }
    Ok(())
}

/// Rejects any top-level field outside `known`.
pub(crate) fn check_known_fields(value: &Value, known: &[&str]) -> Result<(), SchemaError> {
    match value {
        Value::Object(fields) => {
            for (key, _) in fields {
                if !known.contains(&key.as_str()) {
                    return Err(SchemaError::UnknownField(key.clone()));
                }
            }
            Ok(())
        }
        other => Err(SchemaError::Malformed(format!(
            "expected object, found {}",
            other.kind()
        ))),
    }
}

/// Strict field-set check one level into the solver selection: the variant
/// tag must be known and its config payload must carry exactly the fields
/// this crate's solver configs define — a client's typo'd or misplaced
/// config field (say, `swap_interval` inside an `Ensemble` payload) must
/// not be dropped silently.
fn check_solver_fields(value: &Value) -> Result<(), SchemaError> {
    match value {
        Value::Object(fields) if fields.len() == 1 => {
            let (tag, inner) = &fields[0];
            match tag.as_str() {
                "Ensemble" => check_known_fields(
                    inner,
                    &[
                        "replicas",
                        "threads",
                        "batch_width",
                        "schedule",
                        "mcs_per_run",
                        "dynamics",
                    ],
                ),
                "Pt" => check_known_fields(
                    inner,
                    &[
                        "replicas",
                        "beta_min",
                        "beta_max",
                        "sweeps",
                        "swap_interval",
                        "threads",
                    ],
                ),
                "Descent" => check_known_fields(inner, &["max_sweeps"]),
                other => Err(SchemaError::Malformed(format!(
                    "unknown solver variant `{other}`"
                ))),
            }
        }
        other => Err(SchemaError::Malformed(format!(
            "expected single-variant solver object, found {}",
            other.kind()
        ))),
    }
}

pub(crate) fn parse_field<T: Deserialize>(value: &Value, name: &str) -> Result<T, SchemaError> {
    let field = value
        .field(name)
        .map_err(|e| SchemaError::Malformed(e.to_string()))?;
    T::from_value(field).map_err(|e| SchemaError::Malformed(format!("field `{name}`: {e}")))
}

/// The solver-level service: [`JobSpec`]s in, [`JobOutcome`]s out, executed
/// by [`JobSpec::run`] on the worker pool. Failures carry their
/// [`JobFailure::origin`].
pub fn solver_service(config: ServiceConfig) -> JobService<JobSpec, JobOutcome> {
    JobService::start_described(
        config,
        |spec: JobSpec| spec.run(),
        |spec| Some(JobSummary::of(spec)),
    )
}

// ------------------------------------------- controlled service & drain

/// A controlled execution's result: the (possibly partial) [`JobOutcome`]
/// plus — iff the run stopped at a checkpoint — the image that resumes it.
#[derive(Debug, Clone)]
pub struct ControlledOutcome {
    /// The outcome, tagged with how the run ended via
    /// [`JobOutcome::outcome_kind`].
    pub outcome: JobOutcome,
    /// Present iff the run ended [`OutcomeKind::Checkpointed`]. Boxed:
    /// a full engine image dwarfs the outcome it rides with.
    pub checkpoint: Option<Box<Checkpoint>>,
}

/// What a [`ControlledService`] worker executes: a fresh spec, or a
/// checkpoint being resumed.
#[derive(Debug, Clone)]
pub enum SolverJob {
    /// Run the spec from the beginning of its schedule.
    Fresh(JobSpec),
    /// Continue the embedded spec from its captured engine state.
    Resume(Box<Checkpoint>),
}

impl SolverJob {
    /// The job's spec (for `Resume`, the one embedded in the checkpoint).
    pub fn spec(&self) -> &JobSpec {
        match self {
            SolverJob::Fresh(spec) => spec,
            SolverJob::Resume(checkpoint) => &checkpoint.spec,
        }
    }

    /// Executes the job under `ctrl` — the canonical [`ControlledService`]
    /// worker body.
    ///
    /// # Panics
    ///
    /// Panics when a `Resume` checkpoint's engine state does not fit its
    /// own embedded spec — possible only for hand-built checkpoints, since
    /// [`Checkpoint::load`] and the capture paths keep the pair consistent.
    /// Inside a service the panic becomes that job's typed [`JobFailure`],
    /// never a stream teardown.
    pub fn execute(&self, ctrl: &RunController) -> ControlledOutcome {
        // a job whose deadline already passed while it sat in the queue is
        // shed here, before any engine is constructed: it gets the typed
        // DeadlineExceeded terminal outcome a worker poll would eventually
        // have produced, at none of the spin-up cost
        if ctrl.check(0) == Some(OutcomeKind::DeadlineExceeded) {
            return ControlledOutcome {
                outcome: JobOutcome::expired(self.spec()),
                checkpoint: None,
            };
        }
        match self {
            SolverJob::Fresh(spec) => spec.run_controlled(ctrl),
            SolverJob::Resume(checkpoint) => checkpoint
                .spec
                .resume_controlled(&checkpoint.engine, ctrl)
                .unwrap_or_else(|e| panic!("checkpoint does not fit its embedded spec: {e}")),
        }
    }
}

/// What [`ControlledService::shutdown_to`] drained and persisted.
#[derive(Debug, Clone)]
pub struct ShutdownReport {
    /// Outcomes of jobs that ended without a checkpoint during the drain —
    /// completed, cancelled, or deadline-stopped — in submission order.
    pub finished: Vec<JobOutcome>,
    /// Jobs whose execution panicked, in submission order.
    pub failures: Vec<JobFailure>,
    /// In-flight jobs whose state images were written to the directory.
    pub checkpointed: usize,
    /// Queued jobs persisted as spec files (they had not started; resuming
    /// runs them from scratch, which is the same trajectory).
    pub pending: usize,
}

/// A [`JobService`] of [`SolverJob`]s governed by one [`RunController`]:
/// every worker polls the shared controller, so the owner can cancel the
/// whole fleet, impose a deadline, or drain it through
/// [`ControlledService::shutdown_to`] into a directory of resumable
/// checkpoint/spec files that [`ControlledService::resume`] re-submits.
///
/// Determinism carries through interruption: a job that is checkpointed at
/// shutdown and resumed later — at any worker count — produces the
/// bit-identical [`JobOutcome`] (same energies, states, and consumed RNG
/// words, with [`JobOutcome::mcs`] reporting the full schedule) as a job
/// that was never interrupted.
pub struct ControlledService {
    inner: JobService<SolverJob, ControlledOutcome>,
    ctrl: RunController,
}

impl ControlledService {
    /// Spawns the worker pool; every job runs under a clone of `ctrl`.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid (`queue_depth == 0`).
    pub fn start(config: ServiceConfig, ctrl: RunController) -> Self {
        let worker_ctrl = ctrl.clone();
        let inner = JobService::start_described(
            config,
            move |job: SolverJob| job.execute(&worker_ctrl),
            |job: &SolverJob| Some(JobSummary::of(job.spec())),
        );
        ControlledService { inner, ctrl }
    }

    /// The controller every worker polls. Raise
    /// [`RunController::request_cancel`] here to stop the fleet with
    /// partial outcomes within one poll interval per job.
    pub fn controller(&self) -> &RunController {
        &self.ctrl
    }

    /// Enqueues a fresh job; see [`JobService::submit`].
    pub fn submit(&mut self, spec: JobSpec) -> u64 {
        self.inner.submit(SolverJob::Fresh(spec))
    }

    /// Enqueues a checkpointed job to be continued from its captured state;
    /// see [`JobService::submit`].
    pub fn submit_resume(&mut self, checkpoint: Checkpoint) -> u64 {
        self.inner.submit(SolverJob::Resume(Box::new(checkpoint)))
    }

    /// The next finished job in completion order; see [`JobService::recv`].
    pub fn recv(&mut self) -> Option<Result<JobResult<ControlledOutcome>, JobFailure>> {
        self.inner.recv()
    }

    /// Every outstanding result in submission order; see
    /// [`JobService::drain`].
    pub fn drain(&mut self) -> Vec<Result<ControlledOutcome, JobFailure>> {
        self.inner.drain()
    }

    /// Jobs submitted whose results have not been delivered yet.
    pub fn outstanding(&self) -> u64 {
        self.inner.outstanding()
    }

    /// Number of worker threads in the pool.
    pub fn workers(&self) -> usize {
        self.inner.workers()
    }

    /// Graceful drain: asks every in-flight job to checkpoint, persists the
    /// still-queued jobs as spec files and the captured states as
    /// checkpoint files (both written atomically) under `dir`, collects
    /// what finished anyway, and joins the workers. The directory then
    /// holds everything [`ControlledService::resume`] needs to continue the
    /// interrupted work bit-identically.
    ///
    /// File layout: `job-NNNNNN.ckpt` ([`Checkpoint::save`] format) for
    /// checkpointed in-flight jobs, `job-NNNNNN.spec.json`
    /// ([`JobSpec::to_json`]) for jobs that had not started, where `NNNNNN`
    /// is the zero-padded submission index — so resuming re-submits in the
    /// original submission order.
    ///
    /// # Errors
    ///
    /// [`CheckpointError::Io`] when the directory or a file cannot be
    /// written; state for jobs persisted before the failure remains on
    /// disk.
    pub fn shutdown_to(mut self, dir: &Path) -> Result<ShutdownReport, CheckpointError> {
        std::fs::create_dir_all(dir).map_err(|e| CheckpointError::Io(e.to_string()))?;
        self.ctrl.request_checkpoint();
        // pull the jobs no worker has started before draining, so the drain
        // below terminates as soon as the in-flight jobs stop
        let queued = self.inner.queue.take_pending();
        self.inner.cancelled += queued.len() as u64;
        let pending = queued.len();
        for (submitted, job) in queued {
            match job {
                SolverJob::Fresh(spec) => write_atomic(
                    &dir.join(format!("job-{submitted:06}.spec.json")),
                    &spec.to_json(),
                )?,
                SolverJob::Resume(checkpoint) => {
                    checkpoint.save(&dir.join(format!("job-{submitted:06}.ckpt")))?;
                }
            }
        }
        let mut results: Vec<(u64, Result<ControlledOutcome, JobFailure>)> = Vec::new();
        while let Some(result) = self.inner.recv() {
            results.push(match result {
                Ok(ok) => (ok.submitted, Ok(ok.value)),
                Err(failure) => (failure.submitted, Err(failure)),
            });
        }
        results.sort_by_key(|(submitted, _)| *submitted);
        let mut report = ShutdownReport {
            finished: Vec::new(),
            failures: Vec::new(),
            checkpointed: 0,
            pending,
        };
        for (submitted, result) in results {
            match result {
                Ok(run) => {
                    if let Some(checkpoint) = run.checkpoint {
                        checkpoint.save(&dir.join(format!("job-{submitted:06}.ckpt")))?;
                        report.checkpointed += 1;
                    } else {
                        report.finished.push(run.outcome);
                    }
                }
                Err(failure) => report.failures.push(failure),
            }
        }
        Ok(report)
    }

    /// Starts a fresh service and re-submits every job a previous
    /// [`ControlledService::shutdown_to`] persisted under `dir`, in the
    /// original submission order: `.ckpt` files continue from their
    /// captured state, `.spec.json` files run from scratch. Completed
    /// resumed jobs are bit-identical to never-interrupted runs at any
    /// worker count.
    ///
    /// # Errors
    ///
    /// [`CheckpointError::Io`] when the directory cannot be read, any
    /// [`Checkpoint::load`] rejection (truncation, checksum, version,
    /// digest, shape) for a corrupt checkpoint file, and
    /// [`CheckpointError::Malformed`] for an unparsable spec file. Nothing
    /// has run yet when an error is returned.
    pub fn resume(
        config: ServiceConfig,
        ctrl: RunController,
        dir: &Path,
    ) -> Result<Self, CheckpointError> {
        let jobs = load_drain_dir(dir)?;
        let mut service = ControlledService::start(config, ctrl);
        for job in jobs {
            service.inner.submit(job);
        }
        Ok(service)
    }
}

/// Reads a [`ControlledService::shutdown_to`] drain directory back into
/// jobs, in the original submission order. Shared with the network
/// front-end, whose restart path resumes the same file layout.
pub(crate) fn load_drain_dir(dir: &Path) -> Result<Vec<SolverJob>, CheckpointError> {
    let mut names: Vec<PathBuf> = std::fs::read_dir(dir)
        .map_err(|e| CheckpointError::Io(e.to_string()))?
        .map(|entry| entry.map(|e| e.path()))
        .collect::<Result<_, _>>()
        .map_err(|e| CheckpointError::Io(e.to_string()))?;
    // zero-padded names: lexicographic order == submission order
    names.sort();
    let mut jobs = Vec::new();
    for path in names {
        let name = path.file_name().and_then(|n| n.to_str()).unwrap_or("");
        if name.ends_with(".ckpt") {
            jobs.push(SolverJob::Resume(Box::new(Checkpoint::load(&path)?)));
        } else if name.ends_with(".spec.json") {
            let text =
                std::fs::read_to_string(&path).map_err(|e| CheckpointError::Io(e.to_string()))?;
            let spec =
                JobSpec::from_json(&text).map_err(|e| CheckpointError::Malformed(e.to_string()))?;
            jobs.push(SolverJob::Fresh(spec));
        }
    }
    Ok(jobs)
}

/// Stages `text` in a `<path>.tmp` sibling and `rename`s it into place —
/// the same crash-safety contract as [`Checkpoint::save`], for the spec
/// files [`ControlledService::shutdown_to`] persists alongside checkpoints.
pub(crate) fn write_atomic(path: &Path, text: &str) -> Result<(), CheckpointError> {
    let mut tmp_name = path.as_os_str().to_os_string();
    tmp_name.push(".tmp");
    let tmp = PathBuf::from(tmp_name);
    std::fs::write(&tmp, text).map_err(|e| CheckpointError::Io(e.to_string()))?;
    std::fs::rename(&tmp, path).map_err(|e| CheckpointError::Io(e.to_string()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schedule::BetaSchedule;
    use crate::Dynamics;
    use saim_ising::QuboBuilder;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::{Condvar, Mutex};

    fn toy_model(n: usize) -> Qubo {
        let mut b = QuboBuilder::new(n);
        for i in 0..n {
            b.add_linear(i, -1.0).expect("index in range");
        }
        for i in 1..n {
            b.add_pair(i - 1, i, 0.5).expect("indices in range");
        }
        b.build()
    }

    fn small_ensemble() -> SolverSpec {
        SolverSpec::Ensemble(EnsembleConfig {
            replicas: 2,
            threads: 1,
            batch_width: 0,
            schedule: BetaSchedule::linear(6.0),
            mcs_per_run: 40,
            dynamics: Dynamics::Gibbs,
        })
    }

    /// A gate jobs can park on, so tests control exactly when work finishes.
    struct Gate {
        open: Mutex<bool>,
        bell: Condvar,
    }

    impl Gate {
        fn new() -> Arc<Self> {
            Arc::new(Gate {
                open: Mutex::new(false),
                bell: Condvar::new(),
            })
        }

        fn wait(&self) {
            let mut open = self.open.lock().expect("gate lock");
            while !*open {
                open = self.bell.wait(open).expect("gate lock");
            }
        }

        fn open(&self) {
            *self.open.lock().expect("gate lock") = true;
            self.bell.notify_all();
        }
    }

    #[test]
    fn zero_jobs_is_a_clean_stream() {
        let mut service: JobService<u32, u32> = JobService::start(ServiceConfig::default(), |x| x);
        assert!(service.recv().is_none());
        assert!(service.drain().is_empty());
        assert_eq!(service.outstanding(), 0);
    }

    #[test]
    fn single_job_roundtrips_with_its_tag() {
        let mut service = JobService::start(ServiceConfig::default(), |x: u32| x * 2);
        assert_eq!(service.submit(21), 0);
        let result = service
            .recv()
            .expect("one job is outstanding")
            .expect("the job did not panic");
        assert_eq!(result.submitted, 0);
        assert_eq!(result.value, 42);
        assert!(service.recv().is_none());
    }

    #[test]
    fn drain_folds_completion_order_back_into_submission_order() {
        let config = ServiceConfig {
            workers: 4,
            queue_depth: 64,
        };
        let mut service = JobService::start(config, |x: u64| x + 100);
        for x in 0..40u64 {
            assert_eq!(service.submit(x), x);
        }
        let values: Vec<u64> = service
            .drain()
            .into_iter()
            .map(|r| r.expect("no job panicked"))
            .collect();
        assert_eq!(values, (100..140).collect::<Vec<_>>());
        assert_eq!(service.submitted(), 40);
        assert_eq!(service.outstanding(), 0);
    }

    #[test]
    fn try_submit_reports_full_and_blocking_submit_makes_progress() {
        let gate = Gate::new();
        let started = Arc::new(AtomicUsize::new(0));
        let config = ServiceConfig {
            workers: 1,
            queue_depth: 1,
        };
        let mut service = {
            let gate = Arc::clone(&gate);
            let started = Arc::clone(&started);
            JobService::start(config, move |x: u32| {
                started.fetch_add(1, Ordering::SeqCst);
                gate.wait();
                x
            })
        };
        service.submit(0);
        // wait until the worker holds job 0, so the queue state is exact
        while started.load(Ordering::SeqCst) < 1 {
            std::thread::yield_now();
        }
        service.submit(1); // fills the single queue slot
        match service.try_submit(2) {
            Err(SubmitError::Full(job)) => assert_eq!(job, 2),
            Ok(_) => panic!("queue should be saturated"),
        }
        // free the workers; the blocking path must now make progress
        gate.open();
        service.submit(2);
        let mut values: Vec<u32> = service
            .drain()
            .into_iter()
            .map(|r| r.expect("no job panicked"))
            .collect();
        values.sort_unstable();
        assert_eq!(values, vec![0, 1, 2]);
    }

    /// A gated 2-worker service holding 6 submitted jobs: the returned
    /// state has both workers parked *inside* jobs 0 and 1 (the gate is
    /// closed) and jobs 2..6 waiting in the queue — an exact, race-free
    /// mid-stream configuration.
    #[allow(clippy::type_complexity)]
    fn gated_mid_stream_service() -> (
        JobService<u32, u32>,
        Arc<Gate>,
        Arc<AtomicUsize>,
        Arc<AtomicUsize>,
    ) {
        let gate = Gate::new();
        let started = Arc::new(AtomicUsize::new(0));
        let finished = Arc::new(AtomicUsize::new(0));
        let config = ServiceConfig {
            workers: 2,
            queue_depth: 4,
        };
        let mut service = {
            let gate = Arc::clone(&gate);
            let started = Arc::clone(&started);
            let finished = Arc::clone(&finished);
            JobService::start(config, move |x: u32| {
                started.fetch_add(1, Ordering::SeqCst);
                gate.wait();
                finished.fetch_add(1, Ordering::SeqCst);
                x
            })
        };
        for x in 0..6u32 {
            service.submit(x);
        }
        while started.load(Ordering::SeqCst) < 2 {
            std::thread::yield_now();
        }
        (service, gate, started, finished)
    }

    #[test]
    fn discard_pending_cancels_exactly_the_queued_jobs() {
        let (mut service, gate, started, finished) = gated_mid_stream_service();
        // deterministic: the queue is cleared while both workers are
        // provably parked, so exactly the four queued jobs are discarded
        assert_eq!(service.discard_pending(), 4);
        assert_eq!(service.outstanding(), 2);
        gate.open();
        let mut survivors: Vec<u32> = service
            .drain()
            .into_iter()
            .map(|r| r.expect("no job panicked"))
            .collect();
        survivors.sort_unstable();
        assert_eq!(survivors, vec![0, 1], "only the in-flight jobs report");
        assert_eq!(started.load(Ordering::SeqCst), 2, "queued jobs never ran");
        assert_eq!(finished.load(Ordering::SeqCst), 2);
        assert_eq!(service.submitted(), 6);
        assert!(service.recv().is_none());
    }

    #[test]
    fn drop_mid_stream_joins_workers_without_deadlock() {
        let (service, gate, started, finished) = gated_mid_stream_service();
        // open the gate from the side while the drop blocks in its join;
        // how many queued jobs sneak in before the queue is cleared is a
        // race (the exact-discard guarantee is proven deterministically
        // above), but drop must terminate and never strand a started job
        let opener = {
            let gate = Arc::clone(&gate);
            std::thread::spawn(move || {
                std::thread::sleep(std::time::Duration::from_millis(30));
                gate.open();
            })
        };
        drop(service); // must not deadlock
        opener.join().expect("opener finishes");
        let started = started.load(Ordering::SeqCst);
        let finished = finished.load(Ordering::SeqCst);
        assert_eq!(finished, started, "every started job ran to completion");
        assert!((2..=6).contains(&started), "started = {started}");
    }

    /// Pins the fault-isolation contract that replaced the old
    /// re-raise-at-`recv` behavior: a poisoned job costs exactly its own
    /// result slot, and the drain — which used to panic here — delivers
    /// every other job's value.
    #[test]
    fn job_panics_become_typed_failures_not_stream_teardown() {
        let mut service = JobService::start(
            ServiceConfig {
                workers: 1,
                queue_depth: 8,
            },
            |x: u32| {
                if x == 3 {
                    panic!("boom in job 3");
                }
                x
            },
        );
        for x in 0..5u32 {
            service.submit(x);
        }
        let results = service.drain();
        assert_eq!(results.len(), 5, "every job reports, poisoned or not");
        for (i, result) in results.iter().enumerate() {
            match result {
                Ok(value) => {
                    assert_ne!(i, 3);
                    assert_eq!(*value, i as u32);
                }
                Err(failure) => {
                    assert_eq!(i, 3);
                    assert_eq!(failure.submitted, 3);
                    assert!(
                        failure.message.contains("boom in job 3"),
                        "panic text survives: {failure}"
                    );
                }
            }
        }
        assert!(results[3].is_err());
        assert!(service.recv().is_none(), "the stream drained cleanly");
    }

    #[test]
    fn nested_auto_sized_services_collapse_to_one_worker() {
        // a service constructed inside another service's job must not spawn
        // an all-cores pool per worker (cores² threads); explicit counts
        // are still honored
        let mut outer = JobService::start(
            ServiceConfig {
                workers: 1,
                queue_depth: 2,
            },
            |explicit: usize| {
                let inner: JobService<u32, u32> = JobService::start(
                    ServiceConfig {
                        workers: explicit,
                        queue_depth: 1,
                    },
                    |x| x,
                );
                inner.workers()
            },
        );
        outer.submit(0); // auto-sized: must collapse to 1 inside the pool
        outer.submit(3); // explicit: honored as-is
        let mut inner_workers = service_drain_pairs(&mut outer);
        inner_workers.sort_unstable();
        assert_eq!(inner_workers, vec![(0, 1), (1, 3)]);
    }

    /// Drains a service into `(submission, value)` pairs.
    fn service_drain_pairs<J: Send + 'static, R: Send + 'static>(
        service: &mut JobService<J, R>,
    ) -> Vec<(u64, R)> {
        let mut out = Vec::new();
        while let Some(result) = service.recv() {
            let ok = result.expect("no job panicked");
            out.push((ok.submitted, ok.value));
        }
        out
    }

    #[test]
    fn solver_failures_carry_their_origin() {
        // an invalid solver config (zero replicas) panics at engine
        // construction; the typed failure must still say what the job was
        let bad = SolverSpec::Ensemble(EnsembleConfig {
            replicas: 0,
            ..EnsembleConfig::default()
        });
        let mut service = solver_service(ServiceConfig {
            workers: 1,
            queue_depth: 4,
        });
        service.submit(JobSpec::new(77, toy_model(3), bad.clone(), 1).with_instance_digest(42));
        let failure = service
            .recv()
            .expect("one job outstanding")
            .expect_err("zero replicas panics");
        let origin = failure.origin.as_ref().expect("solver services describe");
        assert_eq!(origin.job, 77);
        assert_eq!(origin.instance_digest, 42);
        assert_eq!(origin.solver, bad);
        let shown = failure.to_string();
        assert!(shown.contains("id 77"), "display names the job: {shown}");
    }

    #[test]
    fn queued_jobs_past_deadline_shed_without_engine_spinup() {
        let ctrl = RunController::unlimited()
            .with_deadline(Instant::now() - std::time::Duration::from_secs(1));
        // a spec whose construction would panic: if the dequeue-time shed
        // ever spins the engine up, this test fails as a JobFailure
        let poisoned = JobSpec::new(
            9,
            toy_model(3),
            SolverSpec::Ensemble(EnsembleConfig {
                replicas: 0,
                ..EnsembleConfig::default()
            }),
            1,
        )
        .with_instance_digest(13);
        let mut service = ControlledService::start(
            ServiceConfig {
                workers: 1,
                queue_depth: 4,
            },
            ctrl,
        );
        service.submit(poisoned);
        let run = service
            .recv()
            .expect("one job outstanding")
            .expect("shed at dequeue, not executed");
        assert_eq!(
            run.value.outcome.outcome_kind,
            OutcomeKind::DeadlineExceeded
        );
        assert_eq!(run.value.outcome.job, 9);
        assert_eq!(run.value.outcome.instance_digest, 13);
        assert_eq!(run.value.outcome.mcs, 0, "no sweeps were consumed");
        assert!(run.value.checkpoint.is_none());
        // and the synthesized outcome survives the wire schema losslessly
        let text = run.value.outcome.to_json();
        assert_eq!(
            JobOutcome::from_json(&text).expect("round-trips"),
            run.value.outcome
        );
    }

    #[test]
    #[should_panic(expected = "queue depth must be positive")]
    fn service_rejects_zero_queue_depth() {
        let _: JobService<u32, u32> = JobService::start(
            ServiceConfig {
                workers: 1,
                queue_depth: 0,
            },
            |x| x,
        );
    }

    #[test]
    fn solver_service_matches_direct_engine_calls() {
        let model = toy_model(6);
        let specs: Vec<JobSpec> = (0..6u64)
            .map(|seed| {
                JobSpec::new(seed, model.clone(), small_ensemble(), seed).with_instance_digest(777)
            })
            .collect();
        let mut service = solver_service(ServiceConfig {
            workers: 3,
            queue_depth: 2,
        });
        for spec in &specs {
            service.submit(spec.clone());
        }
        let outcomes: Vec<JobOutcome> = service
            .drain()
            .into_iter()
            .map(|r| r.expect("no job panicked"))
            .collect();
        for (spec, outcome) in specs.iter().zip(&outcomes) {
            let direct = match &spec.solver {
                SolverSpec::Ensemble(config) => {
                    EnsembleAnnealer::new(*config, spec.seed).solve(&spec.model.to_ising())
                }
                _ => unreachable!(),
            };
            let oracle = JobOutcome::new(spec, &direct, std::time::Duration::ZERO);
            assert_eq!(outcome.canonical(), oracle.canonical());
            assert_eq!(outcome.job, spec.job);
            assert_eq!(outcome.instance_digest, 777);
        }
    }

    #[test]
    fn spec_json_roundtrip_is_byte_stable() {
        let spec = JobSpec::new(9, toy_model(4), small_ensemble(), 1234).with_instance_digest(5);
        let json = spec.to_json();
        let back = JobSpec::from_json(&json).expect("round-trips");
        assert_eq!(back, spec);
        assert_eq!(back.to_json(), json);
    }

    #[test]
    fn outcome_json_roundtrip_is_byte_stable() {
        let spec = JobSpec::new(2, toy_model(3), small_ensemble(), 7);
        let outcome = spec.run();
        let json = outcome.to_json();
        let back = JobOutcome::from_json(&json).expect("round-trips");
        assert_eq!(back, outcome);
        assert_eq!(back.to_json(), json);
    }

    #[test]
    fn parser_rejects_unknown_fields_and_wrong_versions() {
        let spec = JobSpec::new(1, toy_model(2), SolverSpec::Descent { max_sweeps: 10 }, 3);
        let json = spec.to_json();

        let extra = json.replacen('{', "{\"surprise\":1,", 1);
        assert_eq!(
            JobSpec::from_json(&extra),
            Err(SchemaError::UnknownField("surprise".into()))
        );

        let wrong_version = json.replacen("\"schema\":3", "\"schema\":99", 1);
        assert_eq!(
            JobSpec::from_json(&wrong_version),
            Err(SchemaError::VersionMismatch {
                found: 99,
                expected: SCHEMA_VERSION
            })
        );

        // a future version's unknown fields must read as a version problem
        let future = extra.replacen("\"schema\":3", "\"schema\":4", 1);
        assert_eq!(
            JobSpec::from_json(&future),
            Err(SchemaError::VersionMismatch {
                found: 4,
                expected: SCHEMA_VERSION
            })
        );

        assert!(matches!(
            JobSpec::from_json("{\"schema\":3}"),
            Err(SchemaError::Malformed(_))
        ));

        // strictness reaches into the solver config and the model header: a
        // typo'd or misplaced field there must not be dropped silently
        let ens_spec = JobSpec::new(1, toy_model(2), small_ensemble(), 3);
        let ens_json = ens_spec.to_json();
        let misplaced =
            ens_json.replacen("\"Ensemble\":{", "\"Ensemble\":{\"swap_interval\":5,", 1);
        assert_eq!(
            JobSpec::from_json(&misplaced),
            Err(SchemaError::UnknownField("swap_interval".into()))
        );
        let bogus_model = ens_json.replacen("\"model\":{", "\"model\":{\"bogus\":1,", 1);
        assert_eq!(
            JobSpec::from_json(&bogus_model),
            Err(SchemaError::UnknownField("bogus".into()))
        );
        assert!(matches!(
            JobSpec::from_json("not json"),
            Err(SchemaError::Json(_))
        ));
        assert!(matches!(
            JobSpec::from_json("[1,2]"),
            Err(SchemaError::Malformed(_))
        ));
    }

    #[test]
    fn descent_and_pt_specs_run_through_the_service() {
        let model = toy_model(5);
        let specs = vec![
            JobSpec::new(
                0,
                model.clone(),
                SolverSpec::Descent { max_sweeps: 100 },
                11,
            ),
            JobSpec::new(
                1,
                model.clone(),
                SolverSpec::Pt(PtConfig {
                    replicas: 3,
                    sweeps: 50,
                    threads: 1,
                    ..PtConfig::default()
                }),
                12,
            ),
        ];
        let mut service = solver_service(ServiceConfig {
            workers: 2,
            queue_depth: 4,
        });
        for spec in &specs {
            service.submit(spec.clone());
        }
        let outcomes: Vec<JobOutcome> = service
            .drain()
            .into_iter()
            .map(|r| r.expect("no job panicked"))
            .collect();
        let descent_direct = GreedyDescent::new(11)
            .with_max_sweeps(100)
            .solve(&model.to_ising());
        let pt_direct = ParallelTempering::new(
            PtConfig {
                replicas: 3,
                sweeps: 50,
                threads: 1,
                ..PtConfig::default()
            },
            12,
        )
        .solve(&model.to_ising());
        assert_eq!(
            outcomes[0].canonical(),
            JobOutcome::new(&specs[0], &descent_direct, std::time::Duration::ZERO).canonical()
        );
        assert_eq!(
            outcomes[1].canonical(),
            JobOutcome::new(&specs[1], &pt_direct, std::time::Duration::ZERO).canonical()
        );
    }

    /// A unique scratch directory, removed when dropped.
    struct ScratchDir(PathBuf);

    impl ScratchDir {
        fn new(tag: &str) -> Self {
            let dir =
                std::env::temp_dir().join(format!("saim-service-{tag}-{}", std::process::id()));
            // a leftover from a crashed earlier run must not pollute this one
            let _ = std::fs::remove_dir_all(&dir);
            std::fs::create_dir_all(&dir).expect("scratch dir is creatable");
            ScratchDir(dir)
        }

        fn path(&self) -> &Path {
            &self.0
        }
    }

    impl Drop for ScratchDir {
        fn drop(&mut self) {
            let _ = std::fs::remove_dir_all(&self.0);
        }
    }

    /// A mixed-solver job set: ensemble, tempering, and descent specs with
    /// distinct seeds, `job` identifier == index.
    fn mixed_specs(model: &Qubo) -> Vec<JobSpec> {
        vec![
            JobSpec::new(0, model.clone(), small_ensemble(), 100),
            JobSpec::new(
                1,
                model.clone(),
                SolverSpec::Pt(PtConfig {
                    replicas: 3,
                    sweeps: 50,
                    swap_interval: 10,
                    threads: 1,
                    ..PtConfig::default()
                }),
                101,
            ),
            JobSpec::new(
                2,
                model.clone(),
                SolverSpec::Descent { max_sweeps: 60 },
                102,
            ),
            JobSpec::new(3, model.clone(), small_ensemble(), 103),
        ]
    }

    #[test]
    fn controlled_service_with_idle_controller_matches_direct_runs() {
        let model = toy_model(6);
        let specs = mixed_specs(&model);
        let mut service = ControlledService::start(
            ServiceConfig {
                workers: 2,
                queue_depth: 8,
            },
            RunController::unlimited(),
        );
        for spec in &specs {
            service.submit(spec.clone());
        }
        let runs = service.drain();
        assert_eq!(runs.len(), specs.len());
        for (spec, run) in specs.iter().zip(runs) {
            let run = run.expect("no job panicked");
            assert_eq!(run.outcome.outcome_kind, OutcomeKind::Completed);
            assert!(run.checkpoint.is_none());
            assert_eq!(run.outcome.canonical(), spec.run().canonical());
        }
    }

    #[test]
    fn cancelled_jobs_return_well_formed_partial_outcomes() {
        let model = toy_model(6);
        // cancel before anything runs: deterministic — every job stops at
        // its entry check with zero sweeps consumed
        let ctrl = RunController::unlimited();
        ctrl.request_cancel();
        let mut service = ControlledService::start(
            ServiceConfig {
                workers: 2,
                queue_depth: 8,
            },
            ctrl,
        );
        let specs = [
            JobSpec::new(0, model.clone(), small_ensemble(), 100),
            JobSpec::new(
                1,
                model.clone(),
                SolverSpec::Pt(PtConfig {
                    replicas: 3,
                    sweeps: 50,
                    threads: 1,
                    ..PtConfig::default()
                }),
                101,
            ),
        ];
        for spec in &specs {
            service.submit(spec.clone());
        }
        for run in service.drain() {
            let run = run.expect("cancellation is not a failure");
            assert_eq!(run.outcome.outcome_kind, OutcomeKind::Cancelled);
            assert!(run.checkpoint.is_none(), "cancel does not capture state");
            assert_eq!(run.outcome.mcs, 0);
            assert!(run.outcome.best_energy.is_finite());
            assert!(run.outcome.best_energy <= run.outcome.last_energy);
        }
    }

    #[test]
    fn shutdown_and_resume_replay_bit_identically_across_worker_counts() {
        let scratch = ScratchDir::new("shutdown-resume");
        let model = toy_model(6);
        let specs = mixed_specs(&model);
        let oracles: Vec<JobOutcome> = specs.iter().map(|spec| spec.run()).collect();

        // every job deterministically checkpoints once 7 sweeps are done
        // (descent may settle first and finish — both paths are covered)
        let ctrl = RunController::unlimited()
            .with_stop_after(7)
            .with_poll_interval(1);
        let mut service = ControlledService::start(
            ServiceConfig {
                workers: 2,
                queue_depth: 8,
            },
            ctrl,
        );
        for spec in &specs {
            service.submit(spec.clone());
        }
        let report = service.shutdown_to(scratch.path()).expect("drain persists");
        assert!(report.failures.is_empty());
        assert_eq!(
            report.finished.len() + report.checkpointed + report.pending,
            specs.len(),
            "every job is accounted for"
        );
        // the three annealing jobs can never complete under the stop: they
        // are resumable — checkpointed if a worker had picked them up,
        // persisted as pending specs otherwise (the split is a race)
        assert!(
            report.checkpointed + report.pending >= 3,
            "annealing jobs must all be resumable"
        );
        for outcome in &report.finished {
            // finished-before-the-stop jobs are final results already
            let oracle = &oracles[outcome.job as usize];
            assert_eq!(outcome.canonical(), oracle.canonical());
        }

        // the same directory resumes repeatedly, at any worker count, to
        // the bit-identical never-interrupted outcomes
        for workers in [1usize, 2, 8] {
            let mut resumed = ControlledService::resume(
                ServiceConfig {
                    workers,
                    queue_depth: 8,
                },
                RunController::unlimited(),
                scratch.path(),
            )
            .expect("the directory is intact");
            let runs = resumed.drain();
            assert_eq!(runs.len(), report.checkpointed + report.pending);
            for run in runs {
                let run = run.expect("no job panicked");
                assert_eq!(run.outcome.outcome_kind, OutcomeKind::Completed);
                let oracle = &oracles[run.outcome.job as usize];
                assert_eq!(
                    run.outcome.canonical(),
                    oracle.canonical(),
                    "resumed job {} diverged at {workers} workers",
                    run.outcome.job
                );
            }
        }
    }

    #[test]
    fn resume_runs_persisted_spec_files_from_scratch() {
        let scratch = ScratchDir::new("resume-spec");
        let spec = JobSpec::new(7, toy_model(5), small_ensemble(), 21);
        std::fs::write(scratch.path().join("job-000000.spec.json"), spec.to_json())
            .expect("spec file is writable");
        let mut service = ControlledService::resume(
            ServiceConfig {
                workers: 1,
                queue_depth: 4,
            },
            RunController::unlimited(),
            scratch.path(),
        )
        .expect("spec files parse");
        let runs = service.drain();
        assert_eq!(runs.len(), 1);
        let run = runs.into_iter().next().unwrap().expect("no job panicked");
        assert_eq!(run.outcome.canonical(), spec.run().canonical());
    }

    #[test]
    fn resume_rejects_a_corrupt_checkpoint_file() {
        let scratch = ScratchDir::new("resume-corrupt");
        let spec = JobSpec::new(3, toy_model(5), small_ensemble(), 9);
        let cut = spec.run_controlled(
            &RunController::unlimited()
                .with_stop_after(3)
                .with_poll_interval(1),
        );
        let checkpoint = cut.checkpoint.expect("the run checkpointed");
        let path = scratch.path().join("job-000000.ckpt");
        checkpoint.save(&path).expect("checkpoint saves");
        let mut bytes = std::fs::read(&path).expect("checkpoint reads");
        bytes[10] ^= 0x01; // single bit flip in the payload
        std::fs::write(&path, bytes).expect("corruption lands");
        let result = ControlledService::resume(
            ServiceConfig {
                workers: 1,
                queue_depth: 4,
            },
            RunController::unlimited(),
            scratch.path(),
        );
        assert!(matches!(result, Err(CheckpointError::ChecksumMismatch)));
    }

    #[test]
    fn mismatched_resume_checkpoint_becomes_a_typed_failure() {
        let model = toy_model(4);
        let ensemble_spec = JobSpec::new(0, model.clone(), small_ensemble(), 5);
        let cut = ensemble_spec.run_controlled(
            &RunController::unlimited()
                .with_stop_after(3)
                .with_poll_interval(1),
        );
        let checkpoint = cut.checkpoint.expect("the run checkpointed");
        // graft the ensemble state onto a descent spec: the worker panics,
        // which must surface as that job's typed failure — not a teardown
        let descent_spec = JobSpec::new(0, model, SolverSpec::Descent { max_sweeps: 10 }, 5);
        let mismatched = Checkpoint::new(descent_spec, checkpoint.engine.clone());
        let mut service = ControlledService::start(
            ServiceConfig {
                workers: 1,
                queue_depth: 2,
            },
            RunController::unlimited(),
        );
        service.submit_resume(mismatched);
        let runs = service.drain();
        assert_eq!(runs.len(), 1);
        let failure = runs
            .into_iter()
            .next()
            .unwrap()
            .expect_err("the mismatch is a failure value");
        assert!(
            failure.message.contains("does not match the spec's solver"),
            "message: {failure}"
        );
    }
}
