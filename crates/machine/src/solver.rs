use saim_ising::{IsingModel, SpinState};
use serde::{Deserialize, Serialize};

/// The result of one solver invocation on an Ising model.
///
/// SAIM (paper Algorithm 1) reads the *last* sample of each annealing run —
/// that is [`SolveOutcome::last`] — while penalty-method baselines typically
/// keep the best state seen anywhere in the run ([`SolveOutcome::best`]).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SolveOutcome {
    /// The final sample at the end of the schedule (what a hardware IM reads out).
    pub last: SpinState,
    /// Energy of [`SolveOutcome::last`].
    pub last_energy: f64,
    /// The lowest-energy state observed during the run.
    pub best: SpinState,
    /// Energy of [`SolveOutcome::best`].
    pub best_energy: f64,
    /// Monte Carlo sweeps consumed by this invocation, summed over replicas.
    pub mcs: u64,
}

/// A heuristic minimizer of Ising Hamiltonians.
///
/// SAIM's outer loop is solver-agnostic ("compatible with any programmable
/// IM"); everything it needs is behind this trait. Implementations are
/// stateful (they own RNG streams and replica states) and may be called
/// repeatedly on models of the same size — SAIM re-invokes the solver after
/// each λ update.
pub trait IsingSolver {
    /// Runs the solver once on `model` and reports the samples.
    fn solve(&mut self, model: &IsingModel) -> SolveOutcome;

    /// Monte Carlo sweeps one [`IsingSolver::solve`] call will consume for a
    /// model of `n` spins. Used for the sample-budget accounting of Fig. 4b.
    fn mcs_per_solve(&self, n: usize) -> u64;

    /// A short human-readable name for reports.
    fn name(&self) -> &'static str;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn outcome_is_serializable() {
        let s = SpinState::all_up(2);
        let o = SolveOutcome {
            last: s.clone(),
            last_energy: 1.0,
            best: s,
            best_energy: 0.5,
            mcs: 10,
        };
        let json = serde_json::to_string(&o).unwrap();
        let back: SolveOutcome = serde_json::from_str(&json).unwrap();
        assert_eq!(o, back);
    }
}
