use serde::{Deserialize, Serialize};

/// Accumulates Monte-Carlo-sweep counts across an experiment.
///
/// The paper's headline claim (Fig. 4b) is sample efficiency: SAIM reaches
/// its accuracy with 2M MCS while the best SA uses 200M and PT-DA 15G. The
/// harness threads one counter through every solver call so those budgets
/// are measured, not assumed.
///
/// ```
/// use saim_machine::SampleCounter;
///
/// let mut c = SampleCounter::new();
/// c.add(1000);
/// c.add(500);
/// assert_eq!(c.total(), 1500);
/// assert_eq!(SampleCounter::speedup(15_000_000_000, 2_000_000), 7500.0);
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct SampleCounter {
    total: u64,
}

impl SampleCounter {
    /// A zeroed counter.
    pub fn new() -> Self {
        SampleCounter::default()
    }

    /// Adds `mcs` sweeps to the tally.
    pub fn add(&mut self, mcs: u64) {
        self.total = self.total.saturating_add(mcs);
    }

    /// Total sweeps recorded.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Ratio of two budgets, as reported in Fig. 4b ("7,500x fewer samples").
    pub fn speedup(reference_mcs: u64, this_mcs: u64) -> f64 {
        reference_mcs as f64 / this_mcs as f64
    }
}

/// A per-run record emitted by experiment drivers.
///
/// One record corresponds to one inner-solver invocation (one SA run in
/// SAIM's loop); the bench harness serializes streams of these to JSON for
/// the figure targets.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RunRecord {
    /// 0-based index of the run within the experiment.
    pub run: usize,
    /// Objective value of the sample read from the machine.
    pub cost: f64,
    /// Whether the sample satisfied every constraint.
    pub feasible: bool,
    /// Cumulative sweeps consumed up to and including this run.
    pub mcs_cumulative: u64,
}

/// Per-client accounting the network front-end keeps (one instance per
/// connected client, plus an aggregate): every job a client submits lands in
/// exactly one terminal bucket, so `accepted == completed + failed +
/// cancelled + expired` once the client's stream has drained — the
/// no-lost-jobs invariant, checkable from telemetry alone.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ClientStats {
    /// Jobs admitted into the scheduler.
    pub accepted: u64,
    /// Frames refused before admission: malformed, oversized, wrong schema
    /// version, or shed by admission control while overloaded.
    pub rejected: u64,
    /// Accepted jobs that completed a full solve.
    pub completed: u64,
    /// Accepted jobs whose execution panicked (typed failure delivered).
    pub failed: u64,
    /// Accepted jobs cancelled — explicitly, by disconnect, or by fleet
    /// shutdown — before or during execution.
    pub cancelled: u64,
    /// Accepted jobs whose deadline passed (in the queue or mid-run).
    pub expired: u64,
}

impl ClientStats {
    /// Terminal responses delivered so far.
    pub fn settled(&self) -> u64 {
        self.completed + self.failed + self.cancelled + self.expired
    }

    /// Accepted jobs still queued or running.
    pub fn in_flight(&self) -> u64 {
        self.accepted - self.settled()
    }

    /// Folds another tally into this one (aggregation across clients).
    pub fn absorb(&mut self, other: &ClientStats) {
        self.accepted += other.accepted;
        self.rejected += other.rejected;
        self.completed += other.completed;
        self.failed += other.failed;
        self.cancelled += other.cancelled;
        self.expired += other.expired;
    }
}

/// Hedged-replication counters the cluster router keeps (see
/// `saim_machine::cluster`): one tally per speculative-replica event, so
/// the compute cost and tail-latency benefit of k > 1 routing are both
/// visible from telemetry alone. `fired == won + wasted` once every hedged
/// job has settled; `suppressed` counts the firings the
/// `max_extra_load` budget deferred.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct HedgeStats {
    /// Speculative extra replicas dispatched to a second backend.
    pub fired: u64,
    /// Settlements won by a hedge replica (the primary was still slower).
    pub won: u64,
    /// Hedges fired whose primary settled first anyway — the pure compute
    /// overhead of speculation.
    pub wasted: u64,
    /// Best-effort cancel frames sent to losing replicas at settlement.
    pub cancelled: u64,
    /// Due hedges deferred because the fleet-wide extra-load budget
    /// (`ReplicationPolicy::max_extra_load`) was exhausted.
    pub suppressed: u64,
}

impl HedgeStats {
    /// Folds another tally into this one.
    pub fn absorb(&mut self, other: &HedgeStats) {
        self.fired += other.fired;
        self.won += other.won;
        self.wasted += other.wasted;
        self.cancelled += other.cancelled;
        self.suppressed += other.suppressed;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hedge_stats_absorb_and_roundtrip() {
        let mut a = HedgeStats {
            fired: 4,
            won: 3,
            wasted: 1,
            cancelled: 3,
            suppressed: 2,
        };
        let b = HedgeStats {
            fired: 1,
            won: 0,
            wasted: 1,
            cancelled: 0,
            suppressed: 0,
        };
        a.absorb(&b);
        assert_eq!(a.fired, 5);
        assert_eq!(a.won + a.wasted, a.fired, "every settled hedge is binned");
        let s = serde_json::to_string(&a).unwrap();
        assert_eq!(serde_json::from_str::<HedgeStats>(&s).unwrap(), a);
    }

    #[test]
    fn client_stats_buckets_are_exhaustive() {
        let mut a = ClientStats {
            accepted: 10,
            rejected: 3,
            completed: 4,
            failed: 1,
            cancelled: 2,
            expired: 1,
        };
        assert_eq!(a.settled(), 8);
        assert_eq!(a.in_flight(), 2);
        let b = ClientStats {
            accepted: 5,
            completed: 5,
            ..ClientStats::default()
        };
        a.absorb(&b);
        assert_eq!(a.accepted, 15);
        assert_eq!(a.settled(), 13);
        let s = serde_json::to_string(&a).unwrap();
        assert_eq!(serde_json::from_str::<ClientStats>(&s).unwrap(), a);
    }

    #[test]
    fn counter_accumulates_and_saturates() {
        let mut c = SampleCounter::new();
        c.add(u64::MAX - 1);
        c.add(10);
        assert_eq!(c.total(), u64::MAX);
    }

    #[test]
    fn paper_speedups() {
        // Fig. 4b: best SA 200M vs SAIM 2M => 100x; PT-DA 15G => 7500x
        assert_eq!(SampleCounter::speedup(200_000_000, 2_000_000), 100.0);
        assert_eq!(SampleCounter::speedup(15_000_000_000, 2_000_000), 7500.0);
    }

    #[test]
    fn record_roundtrips_json() {
        let r = RunRecord {
            run: 3,
            cost: -12.5,
            feasible: true,
            mcs_cumulative: 4000,
        };
        let s = serde_json::to_string(&r).unwrap();
        assert_eq!(serde_json::from_str::<RunRecord>(&s).unwrap(), r);
    }
}
