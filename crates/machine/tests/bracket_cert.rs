//! Certification suite for the tanh bracket behind the three-tier decision
//! kernel: `lo(x) ≤ tanh(x) ≤ hi(x)` against the *platform* `tanh` (the
//! value the exact kernel actually compares), monotonicity, the saturation
//! boundary, subnormals and `x = 0` — plus the oracle replay property:
//! bracket-kernel trajectories are bit-identical to the retained
//! exact-tanh reference kernel.

use proptest::prelude::*;
use saim_ising::QuboBuilder;
use saim_machine::bracket::{gibbs_decision, tanh_bracket, KNEE, SERIES_CUT};
use saim_machine::{derive_seed, new_rng, NoiseSource, PbitMachine, ReplicaBatch};

/// Asserts the bracket certificate at one point.
fn assert_brackets(x: f64) {
    let (lo, hi) = tanh_bracket(x);
    let t = x.tanh();
    assert!(
        lo <= t && t <= hi,
        "bracket [{lo:e}, {hi:e}] misses tanh({x:e}) = {t:e}"
    );
    assert!(lo >= -1.0 && hi <= 1.0, "bracket escapes [-1, 1] at {x:e}");
    assert!(lo <= hi, "inverted bracket at {x:e}");
}

#[test]
fn bracket_certified_on_dense_uniform_grid() {
    // dense uniform grid across the whole unsaturated range and beyond,
    // deliberately incommensurate with the knee so points land on both
    // sides of every regime boundary
    let steps = 400_000;
    for k in 0..=steps {
        let x = -22.0 + 44.0 * k as f64 / steps as f64;
        assert_brackets(x);
    }
}

#[test]
fn bracket_certified_on_log_grid_down_to_subnormals() {
    // geometric grid over the full exponent range, both signs: magnitudes
    // from the smallest subnormal up to past saturation
    for sign in [1.0f64, -1.0] {
        for e in -1074..6 {
            for frac in 0..16 {
                let x = sign * 2f64.powi(e) * (1.0 + frac as f64 / 16.0);
                if x.is_finite() {
                    assert_brackets(x);
                }
            }
        }
    }
    // the very edge cases by construction
    for bits in [1u64, 2, 3, 0x000F_FFFF_FFFF_FFFF, 0x0010_0000_0000_0000] {
        let x = f64::from_bits(bits); // subnormals and the smallest normal
        assert_brackets(x);
        assert_brackets(-x);
    }
}

#[test]
fn bracket_certified_at_boundaries_and_zero() {
    for x in [
        0.0,
        -0.0,
        f64::MIN_POSITIVE,
        -f64::MIN_POSITIVE,
        SERIES_CUT,
        -SERIES_CUT,
        SERIES_CUT - f64::EPSILON,
        SERIES_CUT + f64::EPSILON,
        KNEE,
        -KNEE,
        KNEE - f64::EPSILON,
        KNEE + f64::EPSILON,
        20.0, // the saturation constant of the sweep engines
        -20.0,
        20.0 - 1e-12,
        -(20.0 - 1e-12),
        1e300,
        -1e300,
    ] {
        assert_brackets(x);
    }
    assert_eq!(tanh_bracket(0.0), (0.0, 0.0));
}

#[test]
fn bracket_is_monotone_on_sampled_grids() {
    // Both bounds must be non-decreasing like tanh — exactly within each
    // approximation regime, and globally up to the one harmless exception:
    // where a regime boundary switches to a *tighter* approximant, the
    // upper bound may step down (and, mirrored, the lower bound on the
    // negative side) by less than 5 × 10⁻⁴. A downward step of an upper
    // bound never weakens the certificate; this test guards against real
    // misbehavior (an approximant peaking or decaying inside its regime).
    let regime = |x: f64| -> i32 {
        let a = x.abs();
        let band = if a <= SERIES_CUT {
            0
        } else if a < KNEE {
            1
        } else {
            2
        };
        if x < 0.0 {
            -1 - band
        } else {
            band
        }
    };
    let steps = 200_000;
    let mut prev: Option<(f64, f64, f64)> = None;
    for k in 0..=steps {
        let x = -21.0 + 42.0 * k as f64 / steps as f64;
        let (lo, hi) = tanh_bracket(x);
        if let Some((px, plo, phi)) = prev {
            if regime(px) == regime(x) {
                assert!(lo >= plo, "lo decreases at x = {x}");
                assert!(hi >= phi, "hi decreases at x = {x}");
            } else {
                assert!(lo >= plo - 5e-4, "lo drops too far at boundary {x}");
                assert!(hi >= phi - 5e-4, "hi drops too far at boundary {x}");
            }
        }
        prev = Some((x, lo, hi));
    }
}

proptest! {
    /// Random drives, including the saturation boundary neighbourhood.
    #[test]
    fn bracket_certified_on_random_drives(x in -25.0..25.0f64) {
        assert_brackets(x);
    }

    /// The drawn decision agrees with the exact kernel's comparison for
    /// every (drive, noise) pair — the bit-exactness workhorse.
    #[test]
    fn decision_matches_exact_comparison(x in -25.0..25.0f64, u in -1.0..1.0f64) {
        prop_assert_eq!(gibbs_decision(x, u), x.tanh() + u >= 0.0);
    }

    /// Odd-symmetry sanity: the bracket of `-x` mirrors the bracket of `x`.
    #[test]
    fn bracket_mirrors_under_negation(x in 0.0..25.0f64) {
        let (lo, hi) = tanh_bracket(x);
        prop_assert_eq!(tanh_bracket(-x), (-hi, -lo));
    }
}

/// A small random QKP-shaped QUBO for the replay properties.
fn arb_model() -> impl Strategy<Value = saim_ising::IsingModel> {
    (3usize..8).prop_flat_map(|n| {
        let pairs = proptest::collection::vec(((0..n, 0..n), -3.0..3.0f64), 0..12);
        let linear = proptest::collection::vec(-3.0..3.0f64, n);
        (pairs, linear).prop_map(move |(pairs, linear)| {
            let mut b = QuboBuilder::new(n);
            for ((i, j), v) in pairs {
                if i != j {
                    b.add_pair(i, j, v).expect("indices in range");
                }
            }
            for (i, v) in linear.into_iter().enumerate() {
                b.add_linear(i, v).expect("index in range");
            }
            b.build().to_ising()
        })
    })
}

proptest! {
    /// Oracle replay: the three-tier bracket kernel is bit-identical to
    /// the pre-bracket exact-tanh kernel — same states, energies, flip
    /// counts and RNG consumption — over schedules crossing the whole hot
    /// regime into saturation.
    #[test]
    fn bracket_kernel_replays_exact_oracle(model in arb_model(), seed in 0u64..500) {
        let mut rng_a = new_rng(seed);
        let mut a = PbitMachine::new(&model, &mut rng_a);
        let mut rng_b = new_rng(seed);
        let mut b = PbitMachine::new(&model, &mut rng_b);
        for sweep in 0..40 {
            let beta = 0.3 * sweep as f64; // 0 → 12: hot through saturated
            a.sweep(&model, beta, &mut rng_a);
            b.sweep_exact_oracle(&model, beta, &mut rng_b);
            prop_assert_eq!(a.state(), b.state(), "sweep {}", sweep);
            prop_assert_eq!(a.energy().to_bits(), b.energy().to_bits());
            prop_assert_eq!(a.flips(), b.flips());
        }
        // RNG consumption matched throughout iff the streams still agree
        use rand::Rng;
        prop_assert_eq!(rng_a.gen::<u64>(), rng_b.gen::<u64>());
    }

    /// The batched engine's lanes replay the exact oracle too (through the
    /// serial equivalence): every lane of a width-4 batch matches an
    /// oracle machine on the same stream at hot-regime temperatures.
    #[test]
    fn batch_lanes_replay_exact_oracle(model in arb_model(), seed in 0u64..200) {
        let seeds: Vec<u64> = (0..4).map(|r| derive_seed(seed, r)).collect();
        let mut batch = ReplicaBatch::new(&model, &seeds);
        let mut oracles: Vec<(PbitMachine, NoiseSource)> = seeds
            .iter()
            .map(|&s| {
                let mut rng = new_rng(s);
                let machine = PbitMachine::new(&model, &mut rng);
                (machine, NoiseSource::new(rng))
            })
            .collect();
        for sweep in 0..25 {
            let beta = 0.35 * sweep as f64;
            batch.sweep_uniform(&model, beta);
            for (r, (machine, noise)) in oracles.iter_mut().enumerate() {
                machine.sweep_exact_oracle_buffered(&model, beta, noise);
                prop_assert_eq!(batch.state(r), machine.state().clone(), "lane {}", r);
                prop_assert_eq!(batch.energy(r).to_bits(), machine.energy().to_bits());
                prop_assert_eq!(batch.flips(r), machine.flips());
            }
        }
    }
}
