//! Corruption-injection tests of the checkpoint file format: every way a
//! file can rot on disk — truncation, bit flips, foreign versions, payload
//! mix-ups — must be rejected with the expected typed [`CheckpointError`],
//! never a panic and never a silently-wrong resume.
//!
//! Checks happen in a fixed order (truncation → checksum → version →
//! malformed → instance digest), so tampered payloads here are *re-signed*
//! with a fresh digest when the test targets a check behind the checksum.

use saim_machine::checkpoint::{digest64, CHECKPOINT_VERSION};
use saim_machine::service::{JobSpec, SolverSpec};
use saim_machine::{
    BetaSchedule, Checkpoint, CheckpointError, Dynamics, EnsembleConfig, OutcomeKind, RunController,
};
use std::path::{Path, PathBuf};

/// A unique scratch directory, removed when dropped.
struct ScratchDir(PathBuf);

impl ScratchDir {
    fn new(tag: &str) -> Self {
        let dir =
            std::env::temp_dir().join(format!("saim-ckpt-corruption-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).expect("scratch dir is creatable");
        ScratchDir(dir)
    }

    fn file(&self, name: &str) -> PathBuf {
        self.0.join(name)
    }
}

impl Drop for ScratchDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

/// A real checkpoint captured from a live interrupted run — the corruption
/// below lands on exactly the bytes production would write.
fn live_checkpoint() -> Checkpoint {
    let mut b = saim_ising::QuboBuilder::new(6);
    for i in 0..6 {
        b.add_linear(i, -1.0).expect("index in range");
    }
    for i in 1..6 {
        b.add_pair(i - 1, i, 0.5).expect("indices in range");
    }
    let spec = JobSpec::new(
        4,
        b.build(),
        SolverSpec::Ensemble(EnsembleConfig {
            replicas: 2,
            threads: 1,
            batch_width: 0,
            schedule: BetaSchedule::linear(6.0),
            mcs_per_run: 40,
            dynamics: Dynamics::Gibbs,
        }),
        11,
    )
    .with_instance_digest(777);
    let cut = spec.run_controlled(
        &RunController::unlimited()
            .with_stop_after(3)
            .with_poll_interval(1),
    );
    assert_eq!(cut.outcome.outcome_kind, OutcomeKind::Checkpointed);
    *cut.checkpoint
        .expect("the interrupted run carries a checkpoint")
}

/// Re-signs a (possibly tampered) payload line with a valid digest, so the
/// file passes the checksum gate and exercises the checks behind it.
fn signed(payload: &str) -> String {
    format!("{payload}\n{:016x}\n", digest64(payload.as_bytes()))
}

fn write(path: &Path, text: &str) {
    std::fs::write(path, text).expect("test file is writable");
}

#[test]
fn intact_files_roundtrip_exactly() {
    let scratch = ScratchDir::new("roundtrip");
    let checkpoint = live_checkpoint();
    let path = scratch.file("good.ckpt");
    checkpoint.save(&path).expect("saves");
    let back = Checkpoint::load(&path).expect("an untouched file loads");
    assert_eq!(back, checkpoint);
    assert!(
        !path.with_extension("ckpt.tmp").exists(),
        "the staging sibling is renamed away"
    );
}

#[test]
fn truncated_files_are_rejected() {
    let scratch = ScratchDir::new("truncated");
    let checkpoint = live_checkpoint();
    let path = scratch.file("cut.ckpt");
    checkpoint.save(&path).expect("saves");
    let full = std::fs::read_to_string(&path).expect("reads");

    // an empty file, a payload with no checksum line, and a file cut in the
    // middle of the checksum are all the same crash signature
    for cut in [
        String::new(),
        full.lines().next().expect("payload line").to_string(),
        full[..full.len() - 10].to_string(),
    ] {
        write(&path, &cut);
        assert_eq!(
            Checkpoint::load(&path),
            Err(CheckpointError::Truncated),
            "cut to {} bytes",
            cut.len()
        );
    }
}

#[test]
fn flipped_bits_are_checksum_mismatches() {
    let scratch = ScratchDir::new("bitflip");
    let checkpoint = live_checkpoint();
    let path = scratch.file("flipped.ckpt");
    checkpoint.save(&path).expect("saves");
    let pristine = std::fs::read(&path).expect("reads");

    // a single flipped bit anywhere in the payload line must be caught —
    // probe a spread of offsets, including the first and last payload byte
    let payload_len = pristine
        .iter()
        .position(|&b| b == b'\n')
        .expect("two-line format");
    for offset in [0usize, 1, payload_len / 2, payload_len - 1] {
        let mut bytes = pristine.clone();
        bytes[offset] ^= 0x01;
        std::fs::write(&path, &bytes).expect("corruption lands");
        assert_eq!(
            Checkpoint::load(&path),
            Err(CheckpointError::ChecksumMismatch),
            "flip at byte {offset}"
        );
    }

    // a flip in the stored digest is equally fatal (still valid hex: the
    // low nibbles of '0'..'9' stay digits under ^1)
    let mut bytes = pristine.clone();
    bytes[payload_len + 3] ^= 0x01;
    std::fs::write(&path, &bytes).expect("corruption lands");
    assert!(matches!(
        Checkpoint::load(&path),
        Err(CheckpointError::ChecksumMismatch | CheckpointError::Truncated)
    ));
}

#[test]
fn foreign_versions_are_rejected_even_when_correctly_signed() {
    let scratch = ScratchDir::new("version");
    let checkpoint = live_checkpoint();
    let payload = checkpoint.to_json();
    // the envelope's schema comes first; the embedded JobSpec's own schema
    // field is a different number, so this rewrite touches only the envelope
    let tag = format!("\"schema\":{CHECKPOINT_VERSION}");
    assert!(payload.starts_with(&format!("{{{tag}")));
    let foreign = payload.replacen(&tag, "\"schema\":99", 1);
    let path = scratch.file("future.ckpt");
    write(&path, &signed(&foreign));
    assert_eq!(
        Checkpoint::load(&path),
        Err(CheckpointError::VersionMismatch {
            found: 99,
            expected: CHECKPOINT_VERSION
        })
    );
}

#[test]
fn instance_digest_mixups_are_rejected() {
    let scratch = ScratchDir::new("digest");
    let checkpoint = live_checkpoint();
    let payload = checkpoint.to_json();
    // the envelope digest precedes the embedded spec's copy, so replacing
    // the first occurrence simulates a state image grafted onto the wrong
    // instance's record
    let tampered = payload.replacen("\"instance_digest\":777", "\"instance_digest\":778", 1);
    assert_ne!(tampered, payload);
    let path = scratch.file("mixup.ckpt");
    write(&path, &signed(&tampered));
    assert_eq!(
        Checkpoint::load(&path),
        Err(CheckpointError::InstanceDigestMismatch {
            found: 778,
            expected: 777
        })
    );
}

#[test]
fn malformed_payloads_are_typed_never_panics() {
    let scratch = ScratchDir::new("malformed");
    let path = scratch.file("garbage.ckpt");

    // signed garbage: passes the checksum, fails the parse
    for garbage in ["not json at all", "[1,2,3]", "{\"job\":1}"] {
        write(&path, &signed(garbage));
        assert!(
            matches!(Checkpoint::load(&path), Err(CheckpointError::Malformed(_))),
            "payload {garbage:?}"
        );
    }

    // a third line after the checksum means the file was appended to
    let checkpoint = live_checkpoint();
    let payload = checkpoint.to_json();
    write(&path, &format!("{}extra\n", signed(&payload)));
    assert!(matches!(
        Checkpoint::load(&path),
        Err(CheckpointError::Malformed(_))
    ));

    // an envelope/spec job-id disagreement is a mix-up, not a resume
    let tampered = payload.replacen("\"job\":4", "\"job\":5", 1);
    write(&path, &signed(&tampered));
    assert!(matches!(
        Checkpoint::load(&path),
        Err(CheckpointError::Malformed(_))
    ));
}

#[test]
fn missing_files_are_io_errors() {
    let scratch = ScratchDir::new("missing");
    assert!(matches!(
        Checkpoint::load(&scratch.file("never-written.ckpt")),
        Err(CheckpointError::Io(_))
    ));
}
