//! Frame-fuzz property tests: arbitrary byte-level corruption of valid
//! wire frames — truncations, byte replacements, insertions, deletions,
//! and outright garbage — must always land on a typed error
//! ([`SchemaError`] for the spec/outcome schema, [`FrameError`] for the
//! front-end protocol), never a panic. This is the contract that lets the
//! server parse untrusted sockets inside the accept path with no
//! `catch_unwind` around the parser.

use proptest::prelude::*;
use saim_ising::QuboBuilder;
use saim_machine::frontend::{FrameError, Request, Response};
use saim_machine::service::{JobOutcome, JobSpec, SolverSpec};
use saim_machine::ClientStats;

/// A small but real spec: enough structure that mutations can land inside
/// nested objects, arrays, floats, and string literals.
fn sample_spec(job: u64, seed: u64, n: usize) -> JobSpec {
    let mut b = QuboBuilder::new(n);
    for i in 0..n {
        b.add_linear(i, -1.0 - i as f64 / 4.0)
            .expect("index in range");
    }
    for i in 1..n {
        b.add_pair(0, i, 0.5).expect("indices in range");
    }
    JobSpec::new(job, b.build(), SolverSpec::Descent { max_sweeps: 8 }, seed)
        .with_instance_digest(job.wrapping_mul(0x9E37))
}

/// One byte-level corruption of a frame.
#[derive(Debug, Clone)]
enum Mutation {
    Truncate(usize),
    Replace(usize, u8),
    Insert(usize, u8),
    Delete(usize),
}

fn arb_mutation() -> impl Strategy<Value = Mutation> {
    (0usize..4, 0usize..4096, 0u8..=255u8).prop_map(|(kind, i, b)| match kind {
        0 => Mutation::Truncate(i),
        1 => Mutation::Replace(i, b),
        2 => Mutation::Insert(i, b),
        _ => Mutation::Delete(i),
    })
}

/// Applies `mutations` to `line`'s bytes; indices wrap into the current
/// length so every generated mutation lands somewhere.
fn corrupt(line: &str, mutations: &[Mutation]) -> String {
    let mut bytes = line.as_bytes().to_vec();
    for m in mutations {
        if bytes.is_empty() {
            break;
        }
        match *m {
            Mutation::Truncate(i) => bytes.truncate(i % bytes.len()),
            Mutation::Replace(i, b) => {
                let i = i % bytes.len();
                bytes[i] = b;
            }
            Mutation::Insert(i, b) => bytes.insert(i % (bytes.len() + 1), b),
            Mutation::Delete(i) => {
                let i = i % bytes.len();
                bytes.remove(i);
            }
        }
    }
    // the TCP reader hands the parser lossily-decoded text, so invalid
    // UTF-8 produced by a mutation exercises the same path here
    String::from_utf8_lossy(&bytes).into_owned()
}

/// The five frame producers under test, by index.
fn frame_line(kind: usize, job: u64, seed: u64, n: usize) -> String {
    let spec = sample_spec(job, seed, n);
    match kind {
        0 => spec.to_json(),
        1 => spec.run().to_json(),
        2 => Request::Submit {
            spec,
            priority: (seed % 4) as u8,
            deadline_ms: if seed.is_multiple_of(2) {
                None
            } else {
                Some(seed)
            },
        }
        .to_line(),
        3 => Response::Outcome {
            outcome: spec.run(),
        }
        .to_line(),
        _ => Response::Stats {
            client: sample_stats(seed),
            fleet: sample_stats(seed.rotate_left(13)),
            queue_depth: seed % 512,
            eta_ms: seed.rotate_right(7) % 100_000,
        }
        .to_line(),
    }
}

/// Deterministic nonzero tallies so mutations land on real digits.
fn sample_stats(seed: u64) -> ClientStats {
    ClientStats {
        accepted: seed % 97,
        rejected: seed % 13,
        completed: seed % 89,
        failed: seed % 7,
        cancelled: seed % 5,
        expired: seed % 3,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    /// Corrupted spec/outcome JSON parses to `Ok` (when the mutation was
    /// immaterial) or a typed `SchemaError` — reaching the assertion at
    /// all proves no panic escaped the parser.
    #[test]
    fn corrupted_schema_json_never_panics(
        job in 0u64..1000,
        seed in 0u64..=u64::MAX,
        n in 1usize..5,
        mutations in proptest::collection::vec(arb_mutation(), 1..8),
    ) {
        let spec_line = corrupt(&frame_line(0, job, seed, n), &mutations);
        let outcome_line = corrupt(&frame_line(1, job, seed, n), &mutations);
        let spec_parse = JobSpec::from_json(&spec_line);
        let outcome_parse = JobOutcome::from_json(&outcome_line);
        prop_assert!(spec_parse.is_ok() || spec_parse.is_err());
        prop_assert!(outcome_parse.is_ok() || outcome_parse.is_err());
    }

    /// Corrupted protocol frames parse to `Ok` or a typed `FrameError`;
    /// the error's wire code is always one of the documented rejection
    /// codes, so a client can dispatch on it.
    #[test]
    fn corrupted_protocol_frames_earn_documented_codes(
        kind in 2usize..5,
        job in 0u64..1000,
        seed in 0u64..=u64::MAX,
        n in 1usize..5,
        mutations in proptest::collection::vec(arb_mutation(), 1..8),
    ) {
        let line = corrupt(&frame_line(kind, job, seed, n), &mutations);
        let parsed = if kind == 2 {
            Request::from_line(&line).map(|_| ())
        } else {
            Response::from_line(&line).map(|_| ())
        };
        if let Err(error) = parsed {
            let documented = [
                "oversized", "json", "version", "unknown_field",
                "malformed", "unknown_frame", "unknown_job",
            ];
            prop_assert!(
                documented.contains(&error.code()),
                "undocumented rejection code {:?} for line {line:?}",
                error.code()
            );
        }
    }

    /// Unmutated frames still round-trip after the harness plumbing —
    /// guards the fuzzers themselves against testing a broken producer.
    #[test]
    fn pristine_frames_roundtrip(
        job in 0u64..1000,
        seed in 0u64..=u64::MAX,
        n in 1usize..5,
    ) {
        let spec = sample_spec(job, seed, n);
        prop_assert_eq!(
            JobSpec::from_json(&spec.to_json()).expect("valid"),
            spec.clone()
        );
        let submit = Request::Submit { spec, priority: 0, deadline_ms: None };
        prop_assert_eq!(
            Request::from_line(&submit.to_line()).expect("valid"),
            submit
        );
        let stats = Response::Stats {
            client: sample_stats(seed),
            fleet: sample_stats(seed.rotate_left(13)),
            queue_depth: seed % 512,
            eta_ms: seed.rotate_right(7) % 100_000,
        };
        prop_assert_eq!(
            Response::from_line(&stats.to_line()).expect("valid"),
            stats
        );
    }

    /// Raw garbage bytes — not derived from any valid frame — also land on
    /// typed errors.
    #[test]
    fn arbitrary_garbage_never_panics(bytes in proptest::collection::vec(0u8..=255u8, 0..256)) {
        let line = String::from_utf8_lossy(&bytes).into_owned();
        let _ = JobSpec::from_json(&line);
        let _ = JobOutcome::from_json(&line);
        let _ = Request::from_line(&line);
        let _ = Response::from_line(&line);
        // reaching here is the property: no panic for any input
        let _ = FrameError::UnknownFrame(String::new()).code();
    }
}
