//! Corruption-injection tests of the router's write-ahead intent journal:
//! every way the file can rot on disk — torn tails, bit flips, duplicate
//! `settled` records, orphaned gids, foreign-version and damaged
//! envelopes — must surface as the expected typed [`JournalError`] or
//! [`JournalAnomaly`], never a panic, and recovery must always err the
//! safe way: re-route a survivor rather than risk a double settlement.
//!
//! Journals here are grown by a real [`Journal`] writer so the corruption
//! lands on exactly the bytes production would write, then damaged with
//! raw file edits.

use saim_ising::QuboBuilder;
use saim_machine::checkpoint::digest64;
use saim_machine::cluster::journal::{
    Journal, JournalAnomaly, JournalError, JournalRecord, JOURNAL_VERSION,
};
use saim_machine::service::{JobSpec, SolverSpec};
use std::path::{Path, PathBuf};

/// A unique scratch directory, removed when dropped.
struct ScratchDir(PathBuf);

impl ScratchDir {
    fn new(tag: &str) -> Self {
        let dir = std::env::temp_dir().join(format!(
            "saim-journal-corruption-{tag}-{}",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).expect("scratch dir is creatable");
        ScratchDir(dir)
    }

    fn file(&self, name: &str) -> PathBuf {
        self.0.join(name)
    }
}

impl Drop for ScratchDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

fn spec(gid: u64) -> JobSpec {
    let mut b = QuboBuilder::new(4);
    for i in 0..4 {
        b.add_linear(i, -1.0).expect("index in range");
    }
    JobSpec::new(gid, b.build(), SolverSpec::Descent { max_sweeps: 16 }, gid)
        .with_instance_digest(gid ^ 0xD1)
}

fn routed(gid: u64) -> JournalRecord {
    JournalRecord::Routed {
        gid,
        client_job: gid + 100,
        spec: spec(gid),
    }
}

/// Writes a journal tracing `routed 1..=n`, `accepted` for each, and
/// `settled` for the given gids, through the production writer.
fn grow_journal(path: &Path, n: u64, settle: &[u64]) {
    let (mut journal, recovery) = Journal::open(path).expect("fresh journal opens");
    assert!(recovery.unsettled.is_empty());
    for gid in 1..=n {
        journal.append(&routed(gid)).expect("append routed");
        journal
            .append(&JournalRecord::Accepted { gid, backend: 0 })
            .expect("append accepted");
    }
    for &gid in settle {
        journal
            .append(&JournalRecord::Settled { gid })
            .expect("append settled");
    }
}

fn unsettled_gids(recovery: &saim_machine::cluster::journal::JournalRecovery) -> Vec<u64> {
    recovery.unsettled.iter().map(|j| j.gid).collect()
}

#[test]
fn clean_journal_recovers_only_the_unsettled_jobs() {
    let dir = ScratchDir::new("clean");
    let path = dir.file("intents.ndjson");
    grow_journal(&path, 4, &[2, 4]);
    let (_journal, recovery) = Journal::open(&path).expect("replay");
    assert_eq!(unsettled_gids(&recovery), vec![1, 3]);
    assert_eq!(recovery.settled, 2);
    assert!(recovery.anomalies.is_empty());
    assert!(recovery.next_gid > 4, "next gid clears every journaled gid");
    // the reopen compacted: a third open sees only the survivors, with the
    // settled gids physically gone
    let (_journal, again) = Journal::open(&path).expect("replay compacted");
    assert_eq!(unsettled_gids(&again), vec![1, 3]);
    assert_eq!(again.settled, 0);
    assert!(again.anomalies.is_empty());
}

/// A tail torn mid-line (the crash the journal exists to survive) stops
/// replay with a typed anomaly; the torn record is treated as never
/// written, so the job it described re-routes.
#[test]
fn torn_tail_is_reported_and_replay_stops_before_it() {
    let dir = ScratchDir::new("torn");
    let path = dir.file("intents.ndjson");
    grow_journal(&path, 2, &[1]);
    let mut bytes = std::fs::read(&path).expect("read journal");
    // tear the final line: drop its newline and half its checksum
    bytes.truncate(bytes.len() - 9);
    std::fs::write(&path, &bytes).expect("tear tail");
    let (_journal, recovery) = Journal::open(&path).expect("replay survives a torn tail");
    // the torn line was `settled 1`, so gid 1 conservatively re-routes
    assert_eq!(unsettled_gids(&recovery), vec![1, 2]);
    assert_eq!(recovery.settled, 0);
    assert!(
        matches!(
            recovery.anomalies.as_slice(),
            [JournalAnomaly::TornTail { .. }]
        ),
        "expected a torn-tail anomaly, got {:?}",
        recovery.anomalies
    );
}

/// A flipped bit mid-file fails that line's checksum; replay keeps what
/// came before and conservatively discards the line and everything after.
#[test]
fn bit_flip_fails_the_checksum_and_discards_the_suspect_suffix() {
    let dir = ScratchDir::new("flip");
    let path = dir.file("intents.ndjson");
    grow_journal(&path, 3, &[1, 2, 3]);
    let text = std::fs::read_to_string(&path).expect("read journal");
    let lines: Vec<&str> = text.lines().collect();
    // flip one bit inside the `settled 1` payload (line index 7: header +
    // three routed/accepted pairs), keeping its stale checksum
    let target = 7;
    let mut damaged: Vec<String> = lines.iter().map(|l| l.to_string()).collect();
    let mut line_bytes = damaged[target].clone().into_bytes();
    line_bytes[10] ^= 0x01;
    damaged[target] = String::from_utf8(line_bytes).expect("still utf-8");
    std::fs::write(&path, damaged.join("\n") + "\n").expect("write damaged");
    let (_journal, recovery) = Journal::open(&path).expect("replay survives a bit flip");
    // every settled record was at or after the damage: all three re-route
    assert_eq!(unsettled_gids(&recovery), vec![1, 2, 3]);
    assert_eq!(recovery.settled, 0);
    assert!(
        matches!(
            recovery.anomalies.as_slice(),
            [JournalAnomaly::ChecksumMismatch { line: 8 }]
        ),
        "expected a checksum anomaly at line 8, got {:?}",
        recovery.anomalies
    );
}

/// A duplicate `settled` record is harmless (settlement is idempotent) but
/// surfaced, and must not resurrect or double-drop the gid.
#[test]
fn duplicate_settled_is_surfaced_and_stays_settled() {
    let dir = ScratchDir::new("dup-settled");
    let path = dir.file("intents.ndjson");
    grow_journal(&path, 2, &[2, 2]);
    let (_journal, recovery) = Journal::open(&path).expect("replay");
    assert_eq!(unsettled_gids(&recovery), vec![1]);
    assert_eq!(recovery.settled, 1, "gid 2 settled once, not twice");
    assert!(
        matches!(
            recovery.anomalies.as_slice(),
            [JournalAnomaly::DuplicateSettled { gid: 2, .. }]
        ),
        "expected a duplicate-settled anomaly, got {:?}",
        recovery.anomalies
    );
}

/// `accepted`/`settled` records whose `routed` line was lost to damage are
/// reported and ignored — with no spec there is nothing to re-route.
#[test]
fn orphaned_records_are_reported_and_ignored() {
    let dir = ScratchDir::new("orphan");
    let path = dir.file("intents.ndjson");
    {
        let (mut journal, _) = Journal::open(&path).expect("fresh journal");
        journal.append(&routed(1)).expect("append");
        journal
            .append(&JournalRecord::Settled { gid: 9 })
            .expect("append orphan settled");
        journal
            .append(&JournalRecord::Accepted { gid: 8, backend: 1 })
            .expect("append orphan accepted");
    }
    let (_journal, recovery) = Journal::open(&path).expect("replay");
    assert_eq!(unsettled_gids(&recovery), vec![1]);
    assert_eq!(recovery.settled, 0);
    assert!(
        matches!(
            recovery.anomalies.as_slice(),
            [
                JournalAnomaly::UnknownGid { gid: 9, .. },
                JournalAnomaly::UnknownGid { gid: 8, .. }
            ]
        ),
        "expected two unknown-gid anomalies, got {:?}",
        recovery.anomalies
    );
    assert!(recovery.next_gid > 9, "orphaned gids still fence next_gid");
}

/// A record that passes its checksum but parses as no known kind (writer
/// drift) stops replay at that line with a typed anomaly.
#[test]
fn malformed_record_behind_a_valid_checksum_stops_replay() {
    let dir = ScratchDir::new("malformed");
    let path = dir.file("intents.ndjson");
    grow_journal(&path, 1, &[]);
    {
        let mut text = std::fs::read_to_string(&path).expect("read journal");
        let payload = r#"{"record":"vaporized","gid":1}"#;
        text.push_str(&format!(
            "{payload}\t{:016x}\n",
            digest64(payload.as_bytes())
        ));
        std::fs::write(&path, text).expect("append drifted record");
    }
    let (_journal, recovery) = Journal::open(&path).expect("replay");
    assert_eq!(unsettled_gids(&recovery), vec![1]);
    assert!(
        matches!(
            recovery.anomalies.as_slice(),
            [JournalAnomaly::MalformedRecord { .. }]
        ),
        "expected a malformed-record anomaly, got {:?}",
        recovery.anomalies
    );
}

/// A foreign-version envelope is refused outright with the typed error —
/// nothing in the file can be trusted, so recovery must not guess.
#[test]
fn foreign_version_envelope_is_refused() {
    let dir = ScratchDir::new("version");
    let path = dir.file("intents.ndjson");
    let payload = r#"{"journal":"saim-cluster","version":99}"#;
    let line = format!("{payload}\t{:016x}\n", digest64(payload.as_bytes()));
    std::fs::write(&path, line).expect("write foreign envelope");
    match Journal::open(&path) {
        Err(JournalError::VersionMismatch { found, expected }) => {
            assert_eq!(found, 99);
            assert_eq!(expected, JOURNAL_VERSION);
        }
        other => panic!("expected a version mismatch, got {other:?}"),
    }
}

/// An envelope that is damaged, or names some other file format, is a
/// typed malformed error — the journal never appends below a header it
/// cannot vouch for.
#[test]
fn damaged_or_foreign_envelopes_are_malformed_errors() {
    let dir = ScratchDir::new("envelope");
    let bad_checksum = dir.file("bad-checksum.ndjson");
    std::fs::write(
        &bad_checksum,
        "{\"journal\":\"saim-cluster\",\"version\":1}\t0000000000000000\n",
    )
    .expect("write damaged envelope");
    assert!(
        matches!(
            Journal::open(&bad_checksum),
            Err(JournalError::Malformed(_))
        ),
        "a checksum-failing envelope must be malformed"
    );

    let foreign_tag = dir.file("foreign-tag.ndjson");
    let payload = r#"{"journal":"other-system","version":1}"#;
    std::fs::write(
        &foreign_tag,
        format!("{payload}\t{:016x}\n", digest64(payload.as_bytes())),
    )
    .expect("write foreign tag");
    assert!(
        matches!(Journal::open(&foreign_tag), Err(JournalError::Malformed(_))),
        "a foreign tag must be malformed, not guessed at"
    );

    let not_json = dir.file("not-json.ndjson");
    std::fs::write(&not_json, "this was never a journal\n").expect("write junk");
    assert!(
        matches!(Journal::open(&not_json), Err(JournalError::Malformed(_))),
        "junk bytes must be malformed"
    );
}

/// Interleaved `hedged`/`superseded` records from k-replica routing replay
/// to exactly one re-route per unsettled gid: a job with two journaled
/// live replicas must not be re-delivered twice, and a settled gid stays
/// dead no matter which replica records surround it.
#[test]
fn interleaved_hedge_records_replay_to_exactly_one_reroute() {
    let dir = ScratchDir::new("hedge-interleave");
    let path = dir.file("intents.ndjson");
    {
        let (mut journal, _) = Journal::open(&path).expect("fresh journal");
        // gid 1: full hedged life — primary accepted, replica fired, the
        // primary lost the race and was superseded, then settlement
        journal.append(&routed(1)).expect("append");
        journal
            .append(&JournalRecord::Accepted { gid: 1, backend: 0 })
            .expect("append");
        journal
            .append(&JournalRecord::Hedged { gid: 1, backend: 1 })
            .expect("append");
        journal
            .append(&JournalRecord::Superseded { gid: 1, backend: 0 })
            .expect("append");
        journal
            .append(&JournalRecord::Settled { gid: 1 })
            .expect("append");
        // gid 2: crash with two live replicas journaled (accepted + hedged)
        journal.append(&routed(2)).expect("append");
        journal
            .append(&JournalRecord::Accepted { gid: 2, backend: 0 })
            .expect("append");
        journal
            .append(&JournalRecord::Hedged { gid: 2, backend: 1 })
            .expect("append");
        // gid 3: crash between the loser's `superseded` and the winner's
        // `settled` — conservatively still unsettled
        journal.append(&routed(3)).expect("append");
        journal
            .append(&JournalRecord::Hedged { gid: 3, backend: 1 })
            .expect("append");
        journal
            .append(&JournalRecord::Superseded { gid: 3, backend: 1 })
            .expect("append");
    }
    let (_journal, recovery) = Journal::open(&path).expect("replay");
    assert_eq!(
        unsettled_gids(&recovery),
        vec![2, 3],
        "each unsettled hedged gid re-routes exactly once"
    );
    assert_eq!(recovery.settled, 1);
    assert!(recovery.anomalies.is_empty(), "{:?}", recovery.anomalies);
    assert!(recovery.next_gid > 3, "hedge records fence next_gid");
}

/// A tail torn through the `settled` line of a hedged job treats the
/// settlement as never written: the gid re-routes once, and the `hedged`
/// record before the tear neither resurrects a second copy nor is lost.
#[test]
fn torn_tail_after_hedged_reroutes_the_job_once() {
    let dir = ScratchDir::new("hedge-torn");
    let path = dir.file("intents.ndjson");
    {
        let (mut journal, _) = Journal::open(&path).expect("fresh journal");
        journal.append(&routed(1)).expect("append");
        journal
            .append(&JournalRecord::Accepted { gid: 1, backend: 0 })
            .expect("append");
        journal
            .append(&JournalRecord::Hedged { gid: 1, backend: 1 })
            .expect("append");
        journal
            .append(&JournalRecord::Settled { gid: 1 })
            .expect("append");
    }
    let mut bytes = std::fs::read(&path).expect("read journal");
    bytes.truncate(bytes.len() - 9); // tear into the settled line
    std::fs::write(&path, &bytes).expect("tear tail");
    let (_journal, recovery) = Journal::open(&path).expect("replay survives the tear");
    assert_eq!(unsettled_gids(&recovery), vec![1]);
    assert_eq!(recovery.settled, 0);
    assert!(
        matches!(
            recovery.anomalies.as_slice(),
            [JournalAnomaly::TornTail { .. }]
        ),
        "expected a torn-tail anomaly, got {:?}",
        recovery.anomalies
    );
}

/// A duplicate `settled` surrounded by replica records (the
/// crash-mid-settlement shape: losers journaled, settled, then a re-played
/// settle after restart) is surfaced once and the gid stays dead.
#[test]
fn duplicate_settled_amid_hedge_records_stays_dead() {
    let dir = ScratchDir::new("hedge-dup-settled");
    let path = dir.file("intents.ndjson");
    {
        let (mut journal, _) = Journal::open(&path).expect("fresh journal");
        journal.append(&routed(1)).expect("append");
        journal
            .append(&JournalRecord::Hedged { gid: 1, backend: 1 })
            .expect("append");
        journal
            .append(&JournalRecord::Settled { gid: 1 })
            .expect("append");
        journal
            .append(&JournalRecord::Superseded { gid: 1, backend: 1 })
            .expect("append");
        journal
            .append(&JournalRecord::Settled { gid: 1 })
            .expect("append");
    }
    let (_journal, recovery) = Journal::open(&path).expect("replay");
    assert!(
        unsettled_gids(&recovery).is_empty(),
        "the gid stays settled"
    );
    assert_eq!(recovery.settled, 1, "settled once, not twice");
    assert!(
        matches!(
            recovery.anomalies.as_slice(),
            [JournalAnomaly::DuplicateSettled { gid: 1, .. }]
        ),
        "expected one duplicate-settled anomaly, got {:?}",
        recovery.anomalies
    );
}

/// `hedged`/`superseded` records whose `routed` line was lost are orphans
/// like any other: reported, ignored, and still fencing `next_gid`.
#[test]
fn orphaned_hedge_records_are_reported_and_ignored() {
    let dir = ScratchDir::new("hedge-orphan");
    let path = dir.file("intents.ndjson");
    {
        let (mut journal, _) = Journal::open(&path).expect("fresh journal");
        journal.append(&routed(1)).expect("append");
        journal
            .append(&JournalRecord::Hedged { gid: 7, backend: 1 })
            .expect("append orphan hedged");
        journal
            .append(&JournalRecord::Superseded { gid: 6, backend: 0 })
            .expect("append orphan superseded");
    }
    let (_journal, recovery) = Journal::open(&path).expect("replay");
    assert_eq!(unsettled_gids(&recovery), vec![1]);
    assert!(
        matches!(
            recovery.anomalies.as_slice(),
            [
                JournalAnomaly::UnknownGid { gid: 7, .. },
                JournalAnomaly::UnknownGid { gid: 6, .. }
            ]
        ),
        "expected two unknown-gid anomalies, got {:?}",
        recovery.anomalies
    );
    assert!(recovery.next_gid > 7, "orphaned hedge gids fence next_gid");
}

/// Compaction physically removes damage: after one recovering open, a
/// second open of the same file replays clean.
#[test]
fn compaction_scrubs_damage_so_the_next_open_is_clean() {
    let dir = ScratchDir::new("compact");
    let path = dir.file("intents.ndjson");
    grow_journal(&path, 2, &[1]);
    let mut bytes = std::fs::read(&path).expect("read journal");
    bytes.truncate(bytes.len() - 5);
    std::fs::write(&path, &bytes).expect("tear tail");
    let (_journal, first) = Journal::open(&path).expect("recovering open");
    assert!(!first.anomalies.is_empty(), "the damage was seen");
    drop(_journal);
    let (_journal, second) = Journal::open(&path).expect("clean open");
    assert!(second.anomalies.is_empty(), "the damage was compacted away");
    assert_eq!(unsettled_gids(&second), unsettled_gids(&first));
}
