//! Property-based tests for the p-bit machine.

use proptest::prelude::*;
use saim_ising::{BinaryState, QuboBuilder};
use saim_machine::{
    derive_seed, new_rng, BetaSchedule, Dynamics, IsingSolver, NoiseSource, PbitMachine,
    ReplicaBatch, SimulatedAnnealing,
};

/// A small random Ising model built from a QUBO.
fn arb_model() -> impl Strategy<Value = saim_ising::IsingModel> {
    (3usize..8).prop_flat_map(|n| {
        let pairs = proptest::collection::vec(((0..n, 0..n), -2.0..2.0f64), 0..10);
        let linear = proptest::collection::vec(-2.0..2.0f64, n);
        (pairs, linear).prop_map(move |(pairs, linear)| {
            let mut b = QuboBuilder::new(n);
            for ((i, j), v) in pairs {
                if i != j {
                    b.add_pair(i, j, v).expect("indices in range");
                }
            }
            for (i, v) in linear.into_iter().enumerate() {
                b.add_linear(i, v).expect("index in range");
            }
            b.build().to_ising()
        })
    })
}

/// A small random Ising model that may be empty or a single spin — the
/// degenerate shapes the batched engine must survive.
fn arb_model_with_edge_sizes() -> impl Strategy<Value = saim_ising::IsingModel> {
    (0usize..6).prop_flat_map(|n| {
        let pairs = if n >= 2 {
            proptest::collection::vec(((0..n, 0..n), -2.0..2.0f64), 0..8).boxed()
        } else {
            Just(Vec::new()).boxed()
        };
        let linear = proptest::collection::vec(-2.0..2.0f64, n);
        (pairs, linear).prop_map(move |(pairs, linear)| {
            let mut b = QuboBuilder::new(n);
            for ((i, j), v) in pairs {
                if i != j {
                    b.add_pair(i, j, v).expect("indices in range");
                }
            }
            for (i, v) in linear.into_iter().enumerate() {
                b.add_linear(i, v).expect("index in range");
            }
            b.build().to_ising()
        })
    })
}

/// A ring QUBO large and sparse enough that `to_ising` stores CSR couplings.
fn arb_csr_model() -> impl Strategy<Value = saim_ising::IsingModel> {
    (64usize..90, proptest::collection::vec(-2.0..2.0f64, 90)).prop_map(|(n, weights)| {
        let mut b = QuboBuilder::new(n);
        for i in 0..n {
            let w = weights[i % weights.len()];
            if w != 0.0 {
                b.add_pair(i, (i + 1) % n, w).expect("indices in range");
            }
            b.add_linear(i, 0.4 - 0.2 * (i % 3) as f64)
                .expect("index in range");
        }
        b.build().to_ising()
    })
}

/// Asserts the batch-width-invariance contract on `model`: lanes of an R=8
/// batch, lanes of R=1 batches, and serial [`PbitMachine`] replays of the
/// same streams produce identical trajectories and energies sweep by sweep.
fn assert_batch_width_invariance(model: &saim_ising::IsingModel, seed: u64, sweeps: usize) {
    let seeds: Vec<u64> = (0..8).map(|r| derive_seed(seed, r)).collect();
    let mut wide = ReplicaBatch::new(model, &seeds);
    let mut narrow: Vec<ReplicaBatch> = seeds
        .iter()
        .map(|&s| ReplicaBatch::new(model, &[s]))
        .collect();
    let mut serial: Vec<(PbitMachine, NoiseSource)> = seeds
        .iter()
        .map(|&s| {
            let mut rng = new_rng(s);
            let machine = PbitMachine::new(model, &mut rng);
            (machine, NoiseSource::new(rng))
        })
        .collect();
    for sweep in 0..sweeps {
        let beta = 0.4 * sweep as f64;
        wide.sweep_uniform(model, beta);
        for (r, (solo, (machine, noise))) in narrow.iter_mut().zip(&mut serial).enumerate() {
            solo.sweep_uniform(model, beta);
            machine.sweep_buffered(model, beta, noise);
            assert_eq!(wide.state(r), solo.state(0), "R=8 vs R=1, lane {r}");
            assert_eq!(wide.state(r), *machine.state(), "R=8 vs serial, lane {r}");
            assert_eq!(
                wide.energy(r).to_bits(),
                solo.energy(0).to_bits(),
                "energy R=8 vs R=1, lane {r}"
            );
            assert_eq!(
                wide.energy(r).to_bits(),
                machine.energy().to_bits(),
                "energy R=8 vs serial, lane {r}"
            );
        }
    }
}

/// Serial-oracle replay at one batch width: every lane of a width-`width`
/// batch must track a serial [`PbitMachine`] fed the same stream, sweep by
/// sweep, through an anneal ramp *and* a held deep quench — the held tail
/// keeps β stable so the lane-major engine's settled-set fast path engages
/// and its masked sweeps are pinned against the oracle too.
fn assert_oracle_replay_at_width(model: &saim_ising::IsingModel, seed: u64, width: usize) {
    let seeds: Vec<u64> = (0..width as u64).map(|r| derive_seed(seed, r)).collect();
    let mut batch = ReplicaBatch::new(model, &seeds);
    let mut serial: Vec<(PbitMachine, NoiseSource)> = seeds
        .iter()
        .map(|&s| {
            let mut rng = new_rng(s);
            let machine = PbitMachine::new(model, &mut rng);
            (machine, NoiseSource::new(rng))
        })
        .collect();
    for sweep in 0..30 {
        let beta = if sweep < 10 { 0.6 * sweep as f64 } else { 40.0 };
        batch.sweep_uniform(model, beta);
        for (r, (machine, noise)) in serial.iter_mut().enumerate() {
            machine.sweep_buffered(model, beta, noise);
            assert_eq!(batch.state(r), *machine.state(), "lane {r} of {width}");
            assert_eq!(
                batch.energy(r).to_bits(),
                machine.energy().to_bits(),
                "energy, lane {r} of {width}"
            );
        }
    }
}

proptest! {
    /// Batch-width invariance on dense models, including n = 0 and n = 1:
    /// R = 1, R = 8 and serial replay are trajectory-identical.
    #[test]
    fn batch_width_invariance_on_dense_models(
        model in arb_model_with_edge_sizes(),
        seed in 0u64..500,
    ) {
        assert_batch_width_invariance(&model, seed, 15);
    }

    /// Batch-width invariance on CSR-backed models.
    #[test]
    fn batch_width_invariance_on_csr_models(
        model in arb_csr_model(),
        seed in 0u64..200,
    ) {
        prop_assume!(matches!(model.couplings(), saim_ising::Couplings::Sparse(_)));
        assert_batch_width_invariance(&model, seed, 8);
    }

    /// Oracle replay at widths that are not a multiple of any SIMD/tile
    /// width, on dense models including n = 0 and n = 1.
    #[test]
    fn odd_width_batches_replay_serial_on_dense_models(
        model in arb_model_with_edge_sizes(),
        seed in 0u64..200,
        width_idx in 0usize..4,
    ) {
        let width = [3usize, 5, 7, 17][width_idx];
        assert_oracle_replay_at_width(&model, seed, width);
    }

    /// Oracle replay at odd widths on CSR-backed models.
    #[test]
    fn odd_width_batches_replay_serial_on_csr_models(
        model in arb_csr_model(),
        seed in 0u64..100,
        width_idx in 0usize..4,
    ) {
        prop_assume!(matches!(model.couplings(), saim_ising::Couplings::Sparse(_)));
        let width = [3usize, 5, 7, 17][width_idx];
        assert_oracle_replay_at_width(&model, seed, width);
    }

    /// The batched Metropolis sweep replays the serial machine too.
    #[test]
    fn batched_metropolis_replays_serial(
        model in arb_model(),
        seed in 0u64..200,
    ) {
        let seeds: Vec<u64> = (0..4).map(|r| derive_seed(seed, r)).collect();
        let mut batch = ReplicaBatch::new(&model, &seeds);
        let mut serial: Vec<(PbitMachine, NoiseSource)> = seeds
            .iter()
            .map(|&s| {
                let mut rng = new_rng(s);
                let machine = PbitMachine::new(&model, &mut rng);
                (machine, NoiseSource::new(rng))
            })
            .collect();
        for sweep in 0..12 {
            let beta = 0.3 * sweep as f64;
            batch.metropolis_sweep_uniform(&model, beta);
            for (r, (machine, noise)) in serial.iter_mut().enumerate() {
                machine.metropolis_sweep_buffered(&model, beta, noise);
                prop_assert_eq!(batch.state(r), machine.state().clone(), "lane {}", r);
                prop_assert_eq!(batch.energy(r).to_bits(), machine.energy().to_bits());
            }
        }
    }
}

proptest! {
    /// The incremental energy and local-field books never drift from the
    /// model under either dynamics.
    #[test]
    fn books_never_drift(model in arb_model(), seed in 0u64..1000, beta in 0.0..8.0f64) {
        let mut rng = new_rng(seed);
        let mut machine = PbitMachine::new(&model, &mut rng);
        for sweep in 0..30 {
            if sweep % 2 == 0 {
                machine.sweep(&model, beta, &mut rng);
            } else {
                machine.metropolis_sweep(&model, beta, &mut rng);
            }
            prop_assert!((machine.energy() - model.energy(machine.state())).abs() < 1e-9);
        }
        for i in 0..model.len() {
            let expected = model.local_field(machine.state(), i);
            prop_assert!((machine.local_field(i) - expected).abs() < 1e-9);
        }
    }

    /// Greedy sweeps are monotone and terminate at a 1-flip local optimum.
    #[test]
    fn greedy_descends_to_local_optimum(model in arb_model(), seed in 0u64..1000) {
        let mut rng = new_rng(seed);
        let mut machine = PbitMachine::new(&model, &mut rng);
        let mut prev = machine.energy();
        for _ in 0..200 {
            if machine.greedy_sweep(&model) == 0 {
                break;
            }
            prop_assert!(machine.energy() <= prev + 1e-12);
            prev = machine.energy();
        }
        for i in 0..model.len() {
            prop_assert!(model.delta_energy(machine.state(), i) >= -1e-9);
        }
    }

    /// Solver outcomes are internally consistent for both dynamics, and the
    /// annealed best never beats the brute-force ground state.
    #[test]
    fn solve_outcomes_are_sound(
        model in arb_model(),
        seed in 0u64..500,
        metropolis in proptest::bool::ANY,
    ) {
        let ground = (0u64..(1 << model.len()))
            .map(|m| model.energy(&BinaryState::from_mask(m, model.len()).to_spins()))
            .fold(f64::INFINITY, f64::min);
        let dynamics = if metropolis { Dynamics::Metropolis } else { Dynamics::Gibbs };
        let mut sa = SimulatedAnnealing::new(BetaSchedule::linear(6.0), 40, seed)
            .with_dynamics(dynamics);
        let out = sa.solve(&model);
        prop_assert!(out.best_energy >= ground - 1e-9, "below the ground state");
        prop_assert!(out.best_energy <= out.last_energy + 1e-9);
        prop_assert!((model.energy(&out.best) - out.best_energy).abs() < 1e-9);
        prop_assert_eq!(out.mcs, 40);
    }

    /// Every schedule is bounded by its endpoints and total-length invariant.
    #[test]
    fn schedules_are_bounded(
        beta_max in 0.1..50.0f64,
        total in 1usize..500,
        step_frac in 0.0..1.0f64,
    ) {
        let step = ((total - 1) as f64 * step_frac) as usize;
        for schedule in [
            BetaSchedule::linear(beta_max),
            BetaSchedule::geometric(0.05, beta_max.max(0.06)),
            BetaSchedule::constant(beta_max),
        ] {
            let b = schedule.beta_at(step, total);
            prop_assert!(b >= 0.0);
            prop_assert!(b <= schedule.beta_final() + 1e-12);
        }
    }
}
