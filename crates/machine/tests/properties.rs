//! Property-based tests for the p-bit machine.

use proptest::prelude::*;
use saim_ising::{BinaryState, QuboBuilder};
use saim_machine::{new_rng, BetaSchedule, Dynamics, IsingSolver, PbitMachine, SimulatedAnnealing};

/// A small random Ising model built from a QUBO.
fn arb_model() -> impl Strategy<Value = saim_ising::IsingModel> {
    (3usize..8).prop_flat_map(|n| {
        let pairs = proptest::collection::vec(((0..n, 0..n), -2.0..2.0f64), 0..10);
        let linear = proptest::collection::vec(-2.0..2.0f64, n);
        (pairs, linear).prop_map(move |(pairs, linear)| {
            let mut b = QuboBuilder::new(n);
            for ((i, j), v) in pairs {
                if i != j {
                    b.add_pair(i, j, v).expect("indices in range");
                }
            }
            for (i, v) in linear.into_iter().enumerate() {
                b.add_linear(i, v).expect("index in range");
            }
            b.build().to_ising()
        })
    })
}

proptest! {
    /// The incremental energy and local-field books never drift from the
    /// model under either dynamics.
    #[test]
    fn books_never_drift(model in arb_model(), seed in 0u64..1000, beta in 0.0..8.0f64) {
        let mut rng = new_rng(seed);
        let mut machine = PbitMachine::new(&model, &mut rng);
        for sweep in 0..30 {
            if sweep % 2 == 0 {
                machine.sweep(&model, beta, &mut rng);
            } else {
                machine.metropolis_sweep(&model, beta, &mut rng);
            }
            prop_assert!((machine.energy() - model.energy(machine.state())).abs() < 1e-9);
        }
        for i in 0..model.len() {
            let expected = model.local_field(machine.state(), i);
            prop_assert!((machine.local_field(i) - expected).abs() < 1e-9);
        }
    }

    /// Greedy sweeps are monotone and terminate at a 1-flip local optimum.
    #[test]
    fn greedy_descends_to_local_optimum(model in arb_model(), seed in 0u64..1000) {
        let mut rng = new_rng(seed);
        let mut machine = PbitMachine::new(&model, &mut rng);
        let mut prev = machine.energy();
        for _ in 0..200 {
            if machine.greedy_sweep(&model) == 0 {
                break;
            }
            prop_assert!(machine.energy() <= prev + 1e-12);
            prev = machine.energy();
        }
        for i in 0..model.len() {
            prop_assert!(model.delta_energy(machine.state(), i) >= -1e-9);
        }
    }

    /// Solver outcomes are internally consistent for both dynamics, and the
    /// annealed best never beats the brute-force ground state.
    #[test]
    fn solve_outcomes_are_sound(
        model in arb_model(),
        seed in 0u64..500,
        metropolis in proptest::bool::ANY,
    ) {
        let ground = (0u64..(1 << model.len()))
            .map(|m| model.energy(&BinaryState::from_mask(m, model.len()).to_spins()))
            .fold(f64::INFINITY, f64::min);
        let dynamics = if metropolis { Dynamics::Metropolis } else { Dynamics::Gibbs };
        let mut sa = SimulatedAnnealing::new(BetaSchedule::linear(6.0), 40, seed)
            .with_dynamics(dynamics);
        let out = sa.solve(&model);
        prop_assert!(out.best_energy >= ground - 1e-9, "below the ground state");
        prop_assert!(out.best_energy <= out.last_energy + 1e-9);
        prop_assert!((model.energy(&out.best) - out.best_energy).abs() < 1e-9);
        prop_assert_eq!(out.mcs, 40);
    }

    /// Every schedule is bounded by its endpoints and total-length invariant.
    #[test]
    fn schedules_are_bounded(
        beta_max in 0.1..50.0f64,
        total in 1usize..500,
        step_frac in 0.0..1.0f64,
    ) {
        let step = ((total - 1) as f64 * step_frac) as usize;
        for schedule in [
            BetaSchedule::linear(beta_max),
            BetaSchedule::geometric(0.05, beta_max.max(0.06)),
            BetaSchedule::constant(beta_max),
        ] {
            let b = schedule.beta_at(step, total);
            prop_assert!(b >= 0.0);
            prop_assert!(b <= schedule.beta_final() + 1e-12);
        }
    }
}
