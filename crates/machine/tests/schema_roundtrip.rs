//! Property tests of the job-service wire schema: `serialize → parse →
//! re-serialize` must be byte-stable for arbitrary specs and outcomes —
//! including degenerate instances (n = 0/1, no quadratic terms) — and
//! strict parsing must reject unknown fields and version mismatches with
//! the right typed error.

use proptest::prelude::*;
use saim_ising::{BinaryState, Qubo, QuboBuilder, SpinState};
use saim_machine::service::{JobOutcome, JobSpec, SchemaError, SolverSpec, SCHEMA_VERSION};
use saim_machine::{BetaSchedule, Dynamics, EnsembleConfig, OutcomeKind, PtConfig};

/// Scrubs the one float value whose JSON round-trip is not byte-stable:
/// `-0.0` prints as `-0` but parses back as the integer `0`.
fn definite(v: f64) -> f64 {
    if v == 0.0 {
        0.0
    } else {
        v
    }
}

/// A small random QUBO, including the degenerate shapes n = 0 and n = 1
/// (which necessarily have no quadratic terms — the "empty synergies"
/// edge of the knapsack encodings).
fn arb_qubo() -> impl Strategy<Value = Qubo> {
    (0usize..6).prop_flat_map(|n| {
        let pairs = if n >= 2 {
            proptest::collection::vec(((0..n, 0..n), -2.0..2.0f64), 0..8).boxed()
        } else {
            Just(Vec::new()).boxed()
        };
        let linear = proptest::collection::vec(-2.0..2.0f64, n);
        (pairs, linear, -1.0..1.0f64).prop_map(move |(pairs, linear, offset)| {
            let mut b = QuboBuilder::new(n);
            for ((i, j), v) in pairs {
                if i != j {
                    b.add_pair(i, j, definite(v)).expect("indices in range");
                }
            }
            for (i, v) in linear.into_iter().enumerate() {
                b.add_linear(i, definite(v)).expect("index in range");
            }
            b.add_offset(definite(offset));
            b.build()
        })
    })
}

/// One of the three solver kinds with small but arbitrary configurations.
fn arb_solver() -> impl Strategy<Value = SolverSpec> {
    (
        0usize..3,
        1usize..5,    // replicas (ensemble) / extra replicas (pt)
        0usize..3,    // threads
        1usize..60,   // sweeps
        0.5..12.0f64, // beta_max
        1usize..12,   // swap interval / batch width
    )
        .prop_map(
            |(kind, replicas, threads, sweeps, beta_max, aux)| match kind {
                0 => SolverSpec::Ensemble(EnsembleConfig {
                    replicas,
                    threads,
                    batch_width: aux % 4,
                    schedule: BetaSchedule::linear(definite(beta_max)),
                    mcs_per_run: sweeps,
                    dynamics: if sweeps % 2 == 0 {
                        Dynamics::Gibbs
                    } else {
                        Dynamics::Metropolis
                    },
                }),
                1 => SolverSpec::Pt(PtConfig {
                    replicas: replicas + 1,
                    beta_min: 0.05,
                    beta_max: definite(beta_max),
                    sweeps,
                    swap_interval: aux,
                    threads,
                }),
                _ => SolverSpec::Descent {
                    max_sweeps: sweeps * 10,
                },
            },
        )
}

fn arb_spec() -> impl Strategy<Value = JobSpec> {
    (
        arb_qubo(),
        arb_solver(),
        0u64..u64::MAX,
        0u64..u64::MAX,
        0u64..u64::MAX,
    )
        .prop_map(|(model, solver, job, digest, seed)| {
            JobSpec::new(job, model, solver, seed).with_instance_digest(digest)
        })
}

/// An arbitrary outcome built directly (running solvers per case would
/// dominate the test's runtime without exercising the schema any harder).
fn arb_outcome() -> impl Strategy<Value = JobOutcome> {
    (0usize..6).prop_flat_map(|n| {
        (
            (
                proptest::collection::vec(0u8..2u8, n),
                proptest::collection::vec(0u8..2u8, n),
            ),
            (-50.0..50.0f64, -50.0..50.0f64),
            (0u64..u64::MAX, 0u64..u64::MAX, 0u64..u64::MAX),
        )
            .prop_map(
                |((best_bits, last_bits), (best_energy, last_energy), (job, mcs, elapsed))| {
                    JobOutcome {
                        schema: SCHEMA_VERSION,
                        job,
                        instance_digest: job.wrapping_mul(3),
                        // partial-result kinds must survive the wire, too
                        outcome_kind: match job % 4 {
                            0 => OutcomeKind::Completed,
                            1 => OutcomeKind::Cancelled,
                            2 => OutcomeKind::DeadlineExceeded,
                            _ => OutcomeKind::Checkpointed,
                        },
                        best_energy: definite(best_energy),
                        last_energy: definite(last_energy),
                        mcs,
                        elapsed_ns: elapsed,
                        best: BinaryState::from_bits(&best_bits).to_spins(),
                        last: BinaryState::from_bits(&last_bits).to_spins(),
                    }
                },
            )
    })
}

proptest! {
    /// serialize → parse → re-serialize is byte-stable for specs, and the
    /// parsed struct equals the original.
    #[test]
    fn spec_roundtrip_is_byte_stable(spec in arb_spec()) {
        let json = spec.to_json();
        let back = JobSpec::from_json(&json).expect("round-trips");
        prop_assert_eq!(&back, &spec);
        prop_assert_eq!(back.to_json(), json);
    }

    /// The same byte-stability for outcomes.
    #[test]
    fn outcome_roundtrip_is_byte_stable(outcome in arb_outcome()) {
        let json = outcome.to_json();
        let back = JobOutcome::from_json(&json).expect("round-trips");
        prop_assert_eq!(&back, &outcome);
        prop_assert_eq!(back.to_json(), json);
    }

    /// An extra top-level field — whatever the rest of the payload — is
    /// rejected with the typed unknown-field error.
    #[test]
    fn unknown_fields_are_rejected(spec in arb_spec(), outcome in arb_outcome()) {
        let spec_extra = spec.to_json().replacen('{', "{\"zzz\":0,", 1);
        prop_assert_eq!(
            JobSpec::from_json(&spec_extra),
            Err(SchemaError::UnknownField("zzz".into()))
        );
        let outcome_extra = outcome.to_json().replacen('{', "{\"zzz\":0,", 1);
        prop_assert_eq!(
            JobOutcome::from_json(&outcome_extra),
            Err(SchemaError::UnknownField("zzz".into()))
        );
    }

    /// Any schema version other than the current one is rejected with the
    /// typed version error — even when the rest of the payload is valid.
    #[test]
    fn version_mismatches_are_rejected(spec in arb_spec(), version in 0u32..1000) {
        prop_assume!(version != SCHEMA_VERSION);
        let mut wrong = spec;
        wrong.schema = version;
        prop_assert_eq!(
            JobSpec::from_json(&wrong.to_json()),
            Err(SchemaError::VersionMismatch { found: version, expected: SCHEMA_VERSION })
        );
    }
}

#[test]
fn degenerate_models_roundtrip_exactly() {
    // n = 0 (empty model) and n = 1 (no possible synergies) — the smallest
    // payloads a front-end could legally submit
    for n in [0usize, 1] {
        let mut b = QuboBuilder::new(n);
        if n == 1 {
            b.add_linear(0, -1.5).expect("index in range");
        }
        let spec = JobSpec::new(1, b.build(), SolverSpec::Descent { max_sweeps: 5 }, 2);
        let json = spec.to_json();
        let back = JobSpec::from_json(&json).expect("round-trips");
        assert_eq!(back, spec);
        assert_eq!(back.to_json(), json);
    }
}

#[test]
fn empty_state_outcome_roundtrips() {
    let outcome = JobOutcome {
        schema: SCHEMA_VERSION,
        job: 0,
        instance_digest: 0,
        outcome_kind: OutcomeKind::Completed,
        best_energy: 0.0,
        last_energy: 0.0,
        mcs: 0,
        elapsed_ns: 0,
        best: SpinState::all_up(0),
        last: SpinState::all_up(0),
    };
    let json = outcome.to_json();
    let back = JobOutcome::from_json(&json).expect("round-trips");
    assert_eq!(back, outcome);
    assert_eq!(back.to_json(), json);
}
