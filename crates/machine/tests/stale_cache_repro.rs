//! Repro: settled-set cache survives a β excursion whose flips were never
//! slack-charged, so masked sweeps resume against a stale certificate.

use saim_ising::QuboBuilder;
use saim_machine::{derive_seed, new_rng, NoiseSource, PbitMachine, ReplicaBatch};

#[test]
fn hot_excursion_then_requench_replays_serial_machines() {
    // every spin strongly biased: at a held β = 2 the lane fully settles,
    // rebuilds an (empty) settled-set list with a positive slack budget
    let mut b = QuboBuilder::new(16);
    for i in 0..16 {
        b.add_linear(i, -50.0).unwrap();
    }
    let model = b.build().to_ising();
    let seeds: Vec<u64> = (0..3).map(|r| derive_seed(9, r)).collect();
    let mut batch = ReplicaBatch::new(&model, &seeds);
    let mut serial: Vec<(PbitMachine, NoiseSource)> = seeds
        .iter()
        .map(|&s| {
            let mut rng = new_rng(s);
            let machine = PbitMachine::new(&model, &mut rng);
            (machine, NoiseSource::new(rng))
        })
        .collect();
    // hold β=2 (list builds), one β=0 scramble sweep (flips never charged
    // against the slack budget), then back to β=2 (tag matches again)
    let schedule: Vec<f64> = std::iter::repeat_n(2.0, 10)
        .chain(std::iter::once(0.0))
        .chain(std::iter::repeat_n(2.0, 5))
        .collect();
    for (sweep, &beta) in schedule.iter().enumerate() {
        batch.sweep_uniform(&model, beta);
        for (r, (machine, noise)) in serial.iter_mut().enumerate() {
            machine.sweep_buffered(&model, beta, noise);
            assert_eq!(
                batch.state(r),
                *machine.state(),
                "sweep {sweep} (beta {beta}) lane {r}"
            );
            assert_eq!(
                batch.flips(r),
                machine.flips(),
                "flips at sweep {sweep} lane {r}"
            );
        }
    }
}
