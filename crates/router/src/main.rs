//! `saim-router` — the sharding NDJSON router binary over
//! [`saim_machine::cluster`].
//!
//! Like `saim-server`, this binary is a thin shell: placement, health
//! tracking, failover, and exactly-once settlement all live in the
//! library's [`Cluster`], where they are unit-tested without sockets. The
//! binary adds deployment glue:
//!
//! - a TCP listener speaking the same schema-versioned NDJSON protocol as
//!   `saim-server` — clients need no changes to talk to a sharded fleet,
//! - `--backend ADDR` (repeatable) naming the `saim-server` shards to
//!   route over,
//! - `--journal PATH` for the write-ahead intent journal that makes job
//!   settlement exactly-once across router restarts,
//! - a stdin admin channel — `shutdown` stops routing and exits (closing
//!   stdin does the same); `stats` prints router counters as JSON,
//! - `--replicas` / `--hedge-ms` / `--hedge-cap` — the hedged k-replica
//!   routing policy ([`ReplicationPolicy`]): how many backends each job is
//!   placed on, the speculation-delay floor, and the fleet-wide budget of
//!   live extra replicas,
//! - `--smoke` — a self-contained loopback self-test used by CI: route
//!   jobs over a real socket across two in-process shards, kill one
//!   mid-stream, and verify every job still settles exactly once with an
//!   outcome bit-identical to a direct in-process run, then verify a
//!   fully-down fleet sheds with `overloaded` instead of hanging; a second
//!   phase re-runs the fleet with `k = 2` hedged routing and one stalled
//!   shard and verifies speculation alone (no breaker verdict) settles
//!   every job exactly once.
//!
//! Run `saim-router --help` for the flag list.

use std::collections::HashMap;
use std::io::BufRead;
use std::net::TcpListener;
use std::path::PathBuf;
use std::process::ExitCode;
use std::sync::Arc;
use std::time::{Duration, Instant};

use saim_ising::QuboBuilder;
use saim_machine::cluster::{
    BackendLink, BackendState, Cluster, ClusterConfig, FaultyLink, ManagedBackend,
    ReplicationPolicy, TcpLink,
};
use saim_machine::frontend::faults::BackendFaultPlan;
use saim_machine::frontend::{FrontendConfig, NdjsonClient, Request, Response};
use saim_machine::service::{JobSpec, SolverSpec};

const USAGE: &str = "\
saim-router: sharding NDJSON router over saim-server backends

USAGE:
    saim-router [OPTIONS]

OPTIONS:
    --listen ADDR       TCP address to serve clients (default 127.0.0.1:7900)
    --backend ADDR      a saim-server shard to route over (repeatable;
                        at least one required)
    --window N          per-backend in-flight window (default 8)
    --probe-ms N        backend health-probe interval in ms (default 25)
    --journal PATH      write-ahead intent journal for exactly-once
                        settlement across router restarts
    --replicas K        backends per job including the primary (default 1;
                        2+ hedges a speculative replica against the tail)
    --hedge-ms N        floor on the speculation delay before a hedge
                        replica fires, in ms (default 50; the effective
                        delay is max of this and the primary's settle EMA)
    --hedge-cap N       fleet-wide cap on live hedge replicas (default 4;
                        due hedges over the cap defer, never drop)
    --smoke             run a loopback failover + hedging self-test and
                        exit (CI hook)
    --help              print this text

ADMIN (stdin):
    shutdown            stop routing and exit; closing stdin does the same
    stats               print router counters as JSON
";

struct Options {
    listen: String,
    backends: Vec<String>,
    window: usize,
    probe_ms: u64,
    journal: Option<PathBuf>,
    replicas: usize,
    hedge_ms: u64,
    hedge_cap: usize,
    smoke: bool,
}

impl Default for Options {
    fn default() -> Self {
        let replication = ReplicationPolicy::default();
        Options {
            listen: "127.0.0.1:7900".into(),
            backends: Vec::new(),
            window: 8,
            probe_ms: 25,
            journal: None,
            replicas: replication.k,
            hedge_ms: replication.hedge_delay_ms,
            hedge_cap: replication.max_extra_load,
            smoke: false,
        }
    }
}

fn parse_args(args: &[String]) -> Result<Options, String> {
    let mut opts = Options::default();
    let mut it = args.iter();
    while let Some(flag) = it.next() {
        let mut value = |name: &str| {
            it.next()
                .cloned()
                .ok_or_else(|| format!("{name} needs a value"))
        };
        match flag.as_str() {
            "--listen" => opts.listen = value("--listen")?,
            "--backend" => opts.backends.push(value("--backend")?),
            "--window" => {
                let n: usize = value("--window")?
                    .parse()
                    .map_err(|_| "--window needs an integer".to_string())?;
                if n == 0 {
                    return Err("--window must be positive".into());
                }
                opts.window = n;
            }
            "--probe-ms" => {
                let n: u64 = value("--probe-ms")?
                    .parse()
                    .map_err(|_| "--probe-ms needs an integer".to_string())?;
                if n == 0 {
                    return Err("--probe-ms must be positive".into());
                }
                opts.probe_ms = n;
            }
            "--journal" => opts.journal = Some(PathBuf::from(value("--journal")?)),
            "--replicas" => {
                let k: usize = value("--replicas")?
                    .parse()
                    .map_err(|_| "--replicas needs an integer".to_string())?;
                if k == 0 {
                    return Err("--replicas must be at least 1".into());
                }
                opts.replicas = k;
            }
            "--hedge-ms" => {
                opts.hedge_ms = value("--hedge-ms")?
                    .parse()
                    .map_err(|_| "--hedge-ms needs an integer".to_string())?;
            }
            "--hedge-cap" => {
                opts.hedge_cap = value("--hedge-cap")?
                    .parse()
                    .map_err(|_| "--hedge-cap needs an integer".to_string())?;
            }
            "--smoke" => opts.smoke = true,
            "--help" | "-h" => return Err(String::new()),
            other => return Err(format!("unknown flag {other}")),
        }
    }
    Ok(opts)
}

fn config_of(opts: &Options) -> ClusterConfig {
    ClusterConfig {
        window: opts.window,
        probe_interval: Duration::from_millis(opts.probe_ms),
        journal: opts.journal.clone(),
        replication: ReplicationPolicy {
            k: opts.replicas,
            hedge_delay_ms: opts.hedge_ms,
            max_extra_load: opts.hedge_cap,
        },
        ..ClusterConfig::default()
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let opts = match parse_args(&args) {
        Ok(opts) => opts,
        Err(msg) if msg.is_empty() => {
            print!("{USAGE}");
            return ExitCode::SUCCESS;
        }
        Err(msg) => {
            eprintln!("saim-router: {msg}");
            eprint!("{USAGE}");
            return ExitCode::from(2);
        }
    };
    let result = if opts.smoke {
        run_smoke(&opts)
    } else {
        run_router(&opts)
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("saim-router: {msg}");
            ExitCode::FAILURE
        }
    }
}

/// Routing mode: serve clients over the given backends until `shutdown`
/// (or stdin EOF).
fn run_router(opts: &Options) -> Result<(), String> {
    if opts.backends.is_empty() {
        return Err("at least one --backend is required".into());
    }
    let mut links: Vec<Box<dyn BackendLink>> = Vec::new();
    for addr in &opts.backends {
        let link =
            TcpLink::connect(addr).map_err(|e| format!("cannot reach backend {addr}: {e}"))?;
        links.push(Box::new(link));
    }
    let (cluster, _recovery) =
        Cluster::start(config_of(opts), links).map_err(|e| format!("journal: {e}"))?;
    for anomaly in cluster.recovery_anomalies() {
        eprintln!("saim-router: journal recovery: {anomaly}");
    }
    let listener =
        TcpListener::bind(&opts.listen).map_err(|e| format!("cannot bind {}: {e}", opts.listen))?;
    let addr = listener.local_addr().map_err(|e| e.to_string())?;
    eprintln!(
        "saim-router: listening on {addr}, routing over {} backends",
        opts.backends.len()
    );
    let serving = cluster.serve(listener);
    let stdin = std::io::stdin();
    for line in stdin.lock().lines() {
        let line = line.map_err(|e| format!("stdin: {e}"))?;
        match line.trim() {
            "" => {}
            "shutdown" => break,
            "stats" => {
                let stats = serde_json::to_string(&cluster.stats())
                    .expect("stats serialize to finite JSON");
                println!("{stats}");
            }
            other => {
                let error = Response::Rejected {
                    code: "unknown_admin".into(),
                    error: format!("unknown admin command {other:?} (try `shutdown` or `stats`)"),
                };
                println!("{}", error.to_line());
            }
        }
    }
    let report = cluster.shutdown();
    let _ = serving.join();
    eprintln!(
        "saim-router: stopped ({} settled, {} unsettled journaled, {} reroutes, {} duplicates dropped)",
        report.fleet.completed + report.fleet.failed + report.fleet.cancelled + report.fleet.expired,
        report.unsettled,
        report.reroutes,
        report.duplicates_dropped
    );
    Ok(())
}

/// A small deterministic instance for the smoke jobs.
fn smoke_spec(job: u64) -> JobSpec {
    let mut b = QuboBuilder::new(6);
    for i in 0..6 {
        b.add_linear(i, -1.0).expect("index in range");
    }
    b.add_pair(0, 1, 0.5).expect("indices in range");
    JobSpec::new(job, b.build(), SolverSpec::Descent { max_sweeps: 64 }, job)
        .with_instance_digest(0x5A1A_0000 + job)
}

/// The CI smoke test: two in-process shards behind a real TCP listener,
/// one killed mid-stream; every job must settle exactly once and
/// bit-identical to the direct-run oracle, and a fully-down fleet must
/// shed with `overloaded`.
fn run_smoke(opts: &Options) -> Result<(), String> {
    let scratch = std::env::temp_dir().join(format!("saim-router-smoke-{}", std::process::id()));
    std::fs::create_dir_all(&scratch).map_err(|e| e.to_string())?;
    let plan = Arc::new(BackendFaultPlan::new());
    let backend_config = FrontendConfig {
        workers: 1,
        ..FrontendConfig::default()
    };
    let mut shards: Vec<ManagedBackend> = (0..2)
        .map(|b| ManagedBackend::start(backend_config.clone(), scratch.join(format!("drain-{b}"))))
        .collect();
    let links: Vec<Box<dyn BackendLink>> = shards
        .iter_mut()
        .enumerate()
        .map(|(b, shard)| {
            Box::new(FaultyLink::new(shard.link(), Arc::clone(&plan), b)) as Box<dyn BackendLink>
        })
        .collect();
    let config = ClusterConfig {
        window: opts.window,
        probe_interval: Duration::from_millis(10),
        journal: Some(scratch.join("journal.ndjson")),
        ..ClusterConfig::default()
    };
    let (cluster, _recovery) =
        Cluster::start(config, links).map_err(|e| format!("journal: {e}"))?;
    let listener = TcpListener::bind("127.0.0.1:0").map_err(|e| e.to_string())?;
    let addr = listener.local_addr().map_err(|e| e.to_string())?;
    let serving = cluster.serve(listener);

    let specs: Vec<JobSpec> = (1..=8).map(smoke_spec).collect();
    let mut client = NdjsonClient::connect(&addr.to_string()).map_err(|e| e.to_string())?;
    client
        .send(&Request::Hello { weight: 1 })
        .map_err(|e| e.to_string())?;
    for spec in &specs {
        client
            .send(&Request::Submit {
                spec: spec.clone(),
                priority: 0,
                deadline_ms: None,
            })
            .map_err(|e| e.to_string())?;
    }
    // kill shard 0 while the stream is in flight: its unsettled jobs must
    // fail over to shard 1 and still settle exactly once
    plan.kill(0);
    client
        .set_read_timeout(Duration::from_secs(30))
        .map_err(|e| e.to_string())?;
    let mut accepted = 0usize;
    let mut outcomes = HashMap::new();
    let deadline = Instant::now() + Duration::from_secs(60);
    while outcomes.len() < specs.len() {
        if Instant::now() >= deadline {
            return Err("smoke timed out waiting for outcomes".into());
        }
        match client.recv().map_err(|e| e.to_string())? {
            Response::Accepted { .. } => accepted += 1,
            Response::Outcome { outcome } => {
                if outcomes.insert(outcome.job, outcome).is_some() {
                    return Err("duplicate terminal frame delivered".into());
                }
            }
            other => return Err(format!("unexpected frame {other:?}")),
        }
    }
    if accepted != specs.len() {
        return Err(format!(
            "expected {} acceptances, saw {accepted}",
            specs.len()
        ));
    }
    for spec in &specs {
        let oracle = spec.run().canonical();
        let got = outcomes
            .get(&spec.job)
            .ok_or_else(|| format!("job {} never settled", spec.job))?;
        if got.canonical() != oracle {
            return Err(format!("job {} outcome diverged from direct run", spec.job));
        }
    }

    // a malformed frame earns a typed rejection, same as saim-server
    client
        .send_raw(b"{malformed\n")
        .map_err(|e| e.to_string())?;
    match client.recv().map_err(|e| e.to_string())? {
        Response::Rejected { code, .. } if code == "json" => {}
        other => return Err(format!("expected a typed json rejection, got {other:?}")),
    }

    // kill the surviving shard too: the router must shed, never hang
    plan.kill(1);
    let both_down = Instant::now() + Duration::from_secs(30);
    loop {
        if Instant::now() >= both_down {
            return Err("router never marked both shards down".into());
        }
        if cluster
            .backend_states()
            .iter()
            .all(|s| *s == BackendState::Down)
        {
            break;
        }
        std::thread::sleep(Duration::from_millis(5));
    }
    client
        .send(&Request::Submit {
            spec: smoke_spec(99),
            priority: 0,
            deadline_ms: None,
        })
        .map_err(|e| e.to_string())?;
    match client.recv().map_err(|e| e.to_string())? {
        Response::Overloaded { .. } => {}
        other => return Err(format!("expected an overloaded shed, got {other:?}")),
    }

    let report = cluster.shutdown();
    let _ = serving.join();
    if report.unsettled != 0 {
        return Err(format!("{} jobs left unsettled", report.unsettled));
    }
    let _ = std::fs::remove_dir_all(&scratch);
    println!(
        "smoke ok: 8 jobs exactly-once and bit-identical across a shard kill \
         ({} reroutes), malformed frame rejected, fully-down fleet sheds",
        report.reroutes
    );
    run_smoke_hedging()
}

/// The hedging smoke phase: k = 2 speculative routing over a two-shard
/// fleet with one shard stalled (it receives work but its responses never
/// arrive). The probe interval is deliberately long, so the breaker cannot
/// fail the stalled shard over within the test window — every job placed
/// there can only settle through its hedge replica. Asserts exactly-once
/// settlement, bit-identity with the direct-run oracle, a wall clock
/// bounded well under the first probe verdict, and live hedge counters.
fn run_smoke_hedging() -> Result<(), String> {
    let scratch =
        std::env::temp_dir().join(format!("saim-router-smoke-hedge-{}", std::process::id()));
    std::fs::create_dir_all(&scratch).map_err(|e| e.to_string())?;
    let plan = Arc::new(BackendFaultPlan::new());
    plan.stall(0);
    let backend_config = FrontendConfig {
        workers: 1,
        ..FrontendConfig::default()
    };
    let mut shards: Vec<ManagedBackend> = (0..2)
        .map(|b| ManagedBackend::start(backend_config.clone(), scratch.join(format!("drain-{b}"))))
        .collect();
    let links: Vec<Box<dyn BackendLink>> = shards
        .iter_mut()
        .enumerate()
        .map(|(b, shard)| {
            Box::new(FaultyLink::new(shard.link(), Arc::clone(&plan), b)) as Box<dyn BackendLink>
        })
        .collect();
    let config = ClusterConfig {
        probe_interval: Duration::from_secs(5),
        replication: ReplicationPolicy {
            k: 2,
            hedge_delay_ms: 25,
            max_extra_load: 8,
        },
        journal: Some(scratch.join("journal.ndjson")),
        ..ClusterConfig::default()
    };
    let (cluster, _recovery) =
        Cluster::start(config, links).map_err(|e| format!("journal: {e}"))?;
    let handle = cluster.connect();
    let specs: Vec<JobSpec> = (1..=8).map(smoke_spec).collect();
    let started = Instant::now();
    for spec in &specs {
        handle.submit(spec.clone(), 0, None);
    }
    let mut outcomes = HashMap::new();
    let deadline = started + Duration::from_secs(4);
    while outcomes.len() < specs.len() {
        if Instant::now() >= deadline {
            return Err(format!(
                "hedging smoke stalled with {}/{} outcomes — speculation never \
                 rescued the stalled shard's jobs",
                outcomes.len(),
                specs.len()
            ));
        }
        match handle.recv_timeout(Duration::from_millis(200)) {
            Some(Response::Outcome { outcome }) => {
                if outcomes.insert(outcome.job, outcome).is_some() {
                    return Err("duplicate terminal frame delivered".into());
                }
            }
            Some(Response::Accepted { .. }) | None => {}
            Some(other) => return Err(format!("unexpected frame {other:?}")),
        }
    }
    let settled_in = started.elapsed();
    for spec in &specs {
        let oracle = spec.run().canonical();
        let got = outcomes
            .get(&spec.job)
            .ok_or_else(|| format!("job {} never settled", spec.job))?;
        if got.canonical() != oracle {
            return Err(format!("job {} outcome diverged from direct run", spec.job));
        }
    }
    let stats = cluster.stats();
    if stats.hedges.fired == 0 {
        return Err("no hedge replicas fired against the stalled shard".into());
    }
    if stats.hedges.won == 0 {
        return Err("no settlement was won by a hedge replica".into());
    }
    if stats.hedges.won + stats.hedges.wasted != stats.hedges.fired {
        return Err(format!(
            "hedge accounting leaked: fired {} != won {} + wasted {}",
            stats.hedges.fired, stats.hedges.won, stats.hedges.wasted
        ));
    }
    if stats.outcome_mismatches != 0 {
        return Err(format!(
            "{} outcome mismatches on a deterministic fleet",
            stats.outcome_mismatches
        ));
    }
    let report = cluster.shutdown();
    if report.unsettled != 0 {
        return Err(format!("{} jobs left unsettled", report.unsettled));
    }
    plan.heal(0);
    let _ = std::fs::remove_dir_all(&scratch);
    println!(
        "smoke ok: hedged k=2 routing settled {} jobs exactly-once and \
         bit-identical in {}ms against a stalled shard ({} hedges fired, \
         {} won, {} wasted, {} cancels)",
        specs.len(),
        settled_in.as_millis(),
        stats.hedges.fired,
        stats.hedges.won,
        stats.hedges.wasted,
        stats.hedges.cancelled
    );
    Ok(())
}
