//! `saim-server` — the NDJSON network front-end binary over the
//! `saim-machine` job service.
//!
//! The binary is a thin shell: every scheduling, framing, and
//! fault-tolerance decision lives in [`saim_machine::frontend`] where it is
//! unit-tested without sockets. What this file adds is deployment glue:
//!
//! - a TCP listener speaking the NDJSON protocol (one session per
//!   connection),
//! - a stdin admin channel — `shutdown` drains every queued and running job
//!   into the checkpoint drain layout and exits; `stats` prints fleet
//!   counters as JSON; closing stdin is treated as `shutdown` (the SIGTERM
//!   analog available without signal-handler dependencies),
//! - `--resume DIR` to continue a drained fleet bit-identically, streaming
//!   the recovered outcomes to stdout,
//! - `--stdio` to speak the protocol over stdin/stdout instead of serving
//!   TCP (for harnesses that pipe frames), and
//! - `--smoke` — a self-contained loopback round-trip used by CI: submit a
//!   job over a real socket, verify the outcome is bit-identical to a
//!   direct in-process run, and verify a malformed frame earns a typed
//!   rejection.
//!
//! Run `saim-server --help` for the flag list.

use std::io::{BufRead, Write};
use std::net::TcpListener;
use std::path::PathBuf;
use std::process::ExitCode;
use std::sync::mpsc;
use std::time::Duration;

use saim_ising::QuboBuilder;
use saim_machine::frontend::{
    Backoff, ClientHandle, Frontend, FrontendConfig, NdjsonClient, Request, Response,
};
use saim_machine::service::{JobSpec, SolverSpec};

const USAGE: &str = "\
saim-server: NDJSON job server for the SAIM solver fleet

USAGE:
    saim-server [OPTIONS]

OPTIONS:
    --listen ADDR       TCP address to serve (default 127.0.0.1:7878)
    --workers N         worker threads; 0 = all cores (default 0)
    --max-queued N      fleet-wide admission budget (default 256)
    --drain-dir PATH    where `shutdown` persists unfinished jobs
                        (default saim-drain)
    --resume            load PATH's drained jobs before serving and stream
                        their outcomes to stdout
    --stdio             speak the NDJSON protocol on stdin/stdout instead
                        of TCP (one session, exits when stdin closes)
    --smoke             run a loopback self-test and exit (CI hook)
    --help              print this text

ADMIN (stdin, TCP mode):
    shutdown            drain to --drain-dir and exit; closing stdin does
                        the same
    stats               print fleet counters as JSON
";

struct Options {
    listen: String,
    workers: usize,
    max_queued: usize,
    drain_dir: PathBuf,
    resume: bool,
    stdio: bool,
    smoke: bool,
}

impl Default for Options {
    fn default() -> Self {
        Options {
            listen: "127.0.0.1:7878".into(),
            workers: 0,
            max_queued: 256,
            drain_dir: PathBuf::from("saim-drain"),
            resume: false,
            stdio: false,
            smoke: false,
        }
    }
}

fn parse_args(args: &[String]) -> Result<Options, String> {
    let mut opts = Options::default();
    let mut it = args.iter();
    while let Some(flag) = it.next() {
        let mut value = |name: &str| {
            it.next()
                .cloned()
                .ok_or_else(|| format!("{name} needs a value"))
        };
        match flag.as_str() {
            "--listen" => opts.listen = value("--listen")?,
            "--workers" => {
                opts.workers = value("--workers")?
                    .parse()
                    .map_err(|_| "--workers needs an integer".to_string())?;
            }
            "--max-queued" => {
                let n: usize = value("--max-queued")?
                    .parse()
                    .map_err(|_| "--max-queued needs an integer".to_string())?;
                if n == 0 {
                    return Err("--max-queued must be positive".into());
                }
                opts.max_queued = n;
            }
            "--drain-dir" => opts.drain_dir = PathBuf::from(value("--drain-dir")?),
            "--resume" => opts.resume = true,
            "--stdio" => opts.stdio = true,
            "--smoke" => opts.smoke = true,
            "--help" | "-h" => return Err(String::new()),
            other => return Err(format!("unknown flag {other}")),
        }
    }
    Ok(opts)
}

fn config_of(opts: &Options) -> FrontendConfig {
    FrontendConfig {
        workers: opts.workers,
        max_queued: opts.max_queued,
        ..FrontendConfig::default()
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let opts = match parse_args(&args) {
        Ok(opts) => opts,
        Err(msg) if msg.is_empty() => {
            print!("{USAGE}");
            return ExitCode::SUCCESS;
        }
        Err(msg) => {
            eprintln!("saim-server: {msg}");
            eprint!("{USAGE}");
            return ExitCode::from(2);
        }
    };
    let result = if opts.smoke {
        run_smoke(&opts)
    } else if opts.stdio {
        run_stdio(&opts)
    } else {
        run_server(&opts)
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("saim-server: {msg}");
            ExitCode::FAILURE
        }
    }
}

/// Starts the fleet — resuming a drain directory when asked — and returns
/// the frontend plus the recovery handle's response stream, already being
/// forwarded to stdout by a background thread.
fn start_fleet(opts: &Options) -> Result<Frontend, String> {
    if opts.resume {
        let (frontend, recovery) = Frontend::resume(config_of(opts), &opts.drain_dir)
            .map_err(|e| format!("cannot resume {}: {e}", opts.drain_dir.display()))?;
        eprintln!(
            "saim-server: resumed drained jobs from {}",
            opts.drain_dir.display()
        );
        std::thread::spawn(move || {
            let stdout = std::io::stdout();
            while let Some(response) = recovery.recv() {
                let mut out = stdout.lock();
                let _ = writeln!(out, "{}", response.to_line());
                let _ = out.flush();
            }
        });
        Ok(frontend)
    } else {
        Ok(Frontend::start(config_of(opts)))
    }
}

/// TCP mode: serve connections and run the stdin admin loop until
/// `shutdown` (or stdin EOF) drains the fleet.
fn run_server(opts: &Options) -> Result<(), String> {
    let frontend = start_fleet(opts)?;
    let listener =
        TcpListener::bind(&opts.listen).map_err(|e| format!("cannot bind {}: {e}", opts.listen))?;
    let addr = listener.local_addr().map_err(|e| e.to_string())?;
    eprintln!(
        "saim-server: listening on {addr} with {} workers",
        frontend.workers()
    );
    let serving = frontend.serve(listener);
    let stdin = std::io::stdin();
    for line in stdin.lock().lines() {
        let line = line.map_err(|e| format!("stdin: {e}"))?;
        match line.trim() {
            "" => {}
            "shutdown" => break,
            "stats" => {
                let stats = serde_json::to_string(&frontend.fleet_stats())
                    .expect("stats serialize to finite JSON");
                println!("{stats}");
            }
            other => {
                // the admin channel answers in frames too: a typed error
                // line a wrapping supervisor can parse, never a silent drop
                let error = Response::Rejected {
                    code: "unknown_admin".into(),
                    error: format!("unknown admin command {other:?} (try `shutdown` or `stats`)"),
                };
                println!("{}", error.to_line());
            }
        }
    }
    // `shutdown` typed, or stdin closed under us: drain either way.
    let report = frontend
        .shutdown_to(&opts.drain_dir)
        .map_err(|e| format!("drain failed: {e}"))?;
    let _ = serving.join();
    eprintln!(
        "saim-server: drained to {} ({} checkpointed mid-run, {} still queued)",
        opts.drain_dir.display(),
        report.checkpointed,
        report.pending
    );
    Ok(())
}

/// Stdio mode: one protocol session over stdin/stdout. A pump thread owns
/// the client handle, forwarding stdin frames in and responses out; after
/// stdin closes it waits for every accepted job to settle before exiting.
fn run_stdio(opts: &Options) -> Result<(), String> {
    let frontend = start_fleet(opts)?;
    let handle = frontend.connect();
    let (line_tx, line_rx) = mpsc::channel::<String>();
    let pump = std::thread::spawn(move || pump_session(handle, &line_rx));
    let stdin = std::io::stdin();
    for line in stdin.lock().lines() {
        let line = match line {
            Ok(line) => line,
            Err(_) => break,
        };
        if line_tx.send(line).is_err() {
            break;
        }
    }
    drop(line_tx);
    pump.join()
        .map_err(|_| "session pump panicked".to_string())?;
    drop(frontend);
    Ok(())
}

/// The stdio session pump: interleaves forwarding request lines with
/// draining response frames, then settles the tail after EOF.
fn pump_session(handle: ClientHandle, lines: &mpsc::Receiver<String>) {
    let stdout = std::io::stdout();
    let emit = |response: Response| {
        let mut out = stdout.lock();
        let _ = writeln!(out, "{}", response.to_line());
        let _ = out.flush();
    };
    loop {
        while let Some(response) = handle.try_recv() {
            emit(response);
        }
        match lines.recv_timeout(Duration::from_millis(10)) {
            Ok(line) => {
                handle.send_line(&line);
            }
            Err(mpsc::RecvTimeoutError::Timeout) => {}
            Err(mpsc::RecvTimeoutError::Disconnected) => break,
        }
    }
    // stdin is gone; deliver every outstanding terminal response before
    // exiting so piped harnesses never lose accepted jobs.
    loop {
        handle.send(Request::Stats);
        let mut in_flight = None;
        while in_flight.is_none() {
            match handle.recv_timeout(Duration::from_secs(30)) {
                Some(Response::Stats { client, .. }) => in_flight = Some(client.in_flight()),
                Some(response) => emit(response),
                None => return,
            }
        }
        if in_flight == Some(0) {
            return;
        }
        std::thread::sleep(Duration::from_millis(10));
    }
}

/// The CI smoke test: a full loopback round-trip plus a typed-rejection
/// check, self-contained in one process.
fn run_smoke(opts: &Options) -> Result<(), String> {
    let spec = smoke_spec();
    let expected = spec.run().canonical();

    let frontend = Frontend::start(config_of(opts));
    let listener = TcpListener::bind("127.0.0.1:0").map_err(|e| e.to_string())?;
    let addr = listener.local_addr().map_err(|e| e.to_string())?;
    let serving = frontend.serve(listener);

    let mut client = NdjsonClient::connect(&addr.to_string()).map_err(|e| e.to_string())?;
    client
        .send(&Request::Hello { weight: 1 })
        .map_err(|e| e.to_string())?;
    let mut backoff = Backoff::new(1, 5, 100);
    let response = client
        .submit_retrying(&spec, 0, None, &mut backoff, 16)
        .map_err(|e| e.to_string())?;
    if !matches!(response, Response::Accepted { job: 1 }) {
        return Err(format!("expected acceptance, got {response:?}"));
    }
    match client.recv().map_err(|e| e.to_string())? {
        Response::Outcome { outcome } if outcome.canonical() == expected => {}
        other => return Err(format!("loopback outcome diverged: {other:?}")),
    }

    client
        .send_raw(b"{malformed\n")
        .map_err(|e| e.to_string())?;
    match client.recv().map_err(|e| e.to_string())? {
        Response::Rejected { code, .. } if code == "json" => {}
        other => return Err(format!("expected a typed json rejection, got {other:?}")),
    }

    let report = frontend
        .shutdown_to(&opts.drain_dir)
        .map_err(|e| format!("smoke drain failed: {e}"))?;
    let _ = serving.join();
    if report.checkpointed + report.pending != 0 {
        return Err("smoke fleet drained with unfinished jobs".into());
    }
    let _ = std::fs::remove_dir_all(&opts.drain_dir);
    println!("smoke ok: loopback outcome bit-identical, malformed frame rejected");
    Ok(())
}

/// A tiny deterministic instance for the smoke round-trip.
fn smoke_spec() -> JobSpec {
    let mut b = QuboBuilder::new(6);
    for i in 0..6 {
        b.add_linear(i, -1.0).expect("index in range");
    }
    b.add_pair(0, 1, 0.5).expect("indices in range");
    JobSpec::new(1, b.build(), SolverSpec::Descent { max_sweeps: 64 }, 7)
}
