//! Co-scheduling synergistic jobs on a shared accelerator — a quadratic
//! knapsack in disguise, solved three ways (SAIM, exact, greedy).
//!
//! ```text
//! cargo run -p saim-core --release --example job_batching
//! ```
//!
//! Each job has a standalone speedup value and a memory footprint; pairs of
//! jobs that share model weights gain *extra* value when batched together
//! (the quadratic term). The accelerator has fixed memory — a capacity
//! constraint. This is exactly QKP (paper eq. 12) with a systems story.

use saim_core::{ConstrainedProblem, SaimConfig, SaimRunner};
use saim_exact::bb::{self, BbLimits};
use saim_heuristics::{greedy, local};
use saim_knapsack::QkpInstance;
use saim_machine::{BetaSchedule, SimulatedAnnealing};
use std::error::Error;

fn main() -> Result<(), Box<dyn Error>> {
    let jobs = [
        "resnet-infer",
        "bert-embed",
        "bert-rank",
        "whisper-small",
        "llm-draft",
        "llm-verify",
        "ocr-batch",
        "rec-retrieval",
        "rec-rank",
        "tts-stream",
        "vision-detect",
        "vision-track",
        "asr-align",
        "翻译-batch",
    ];
    // standalone value (throughput gain) and memory footprint (GB)
    let value = vec![40, 55, 50, 35, 90, 85, 20, 60, 58, 25, 45, 42, 18, 30];
    let memory = vec![8, 6, 6, 5, 24, 20, 3, 10, 9, 4, 7, 7, 3, 5];
    // weight-sharing synergies: batching both members reuses cached weights
    let synergy = vec![
        (1, 2, 35),   // the two BERT stages share an encoder
        (4, 5, 60),   // draft+verify share the base LLM
        (7, 8, 40),   // retrieval+rank share embeddings
        (10, 11, 30), // detect+track share a backbone
        (3, 12, 15),  // whisper + alignment share audio features
        (1, 7, 12),   // embeddings reused by retrieval
    ];
    let vram = 64; // GB

    let instance = QkpInstance::new(value.clone(), synergy, memory.clone(), vram)?
        .with_label("job-batching-14");
    let encoded = instance.encode()?;

    // SAIM with the paper's QKP preset
    let config = SaimConfig {
        penalty: encoded.penalty_for_alpha(2.0),
        eta: 20.0,
        iterations: 200,
        seed: 5,
    };
    let solver = SimulatedAnnealing::new(BetaSchedule::linear(10.0), 1000, 5);
    let outcome = SaimRunner::new(config).run(&encoded, solver);
    let best = outcome.best.as_ref().ok_or("no feasible batch found")?;
    let batch = encoded.decode(&best.state);

    println!("accelerator batch (VRAM {} GB):", vram);
    for (i, name) in jobs.iter().enumerate() {
        if batch[i] == 1 {
            println!("  + {name} (value {}, {} GB)", value[i], memory[i]);
        }
    }
    println!(
        "SAIM batch value {} using {}/{} GB",
        -best.cost,
        instance.weight(&batch),
        vram
    );

    // exact reference and greedy baseline
    let exact = bb::solve_qkp(&instance, BbLimits::default());
    let mut greedy_sel = greedy::qkp(&instance);
    local::improve_qkp(&instance, &mut greedy_sel);
    println!(
        "\nexact optimum: {} ({})",
        exact.profit,
        if exact.proven_optimal {
            "certified"
        } else {
            "incumbent"
        }
    );
    println!("greedy + local search: {}", instance.profit(&greedy_sel));
    println!(
        "SAIM reached {:.1}% of optimal; synergy pairs captured make the difference\n\
         between this and the linear-greedy answer.",
        100.0 * (-best.cost) / exact.profit as f64
    );
    Ok(())
}
