//! Many QKP instances flowing through the batched job service at once —
//! the "heavy traffic" shape: submit a mixed stream of jobs, consume
//! results as they complete, and still get deterministic answers.
//!
//! ```text
//! cargo run --release --example job_service
//! ```
//!
//! Three layers are shown:
//!
//! 1. the **machine-level** service (`solver_service`): serialized
//!    `JobSpec`s — QUBO payload + solver selection + seed — stream through
//!    a bounded queue onto a persistent worker pool, results coming back
//!    in completion order tagged with submission order;
//! 2. the **SAIM-level** facade (`SaimRunner::run_jobs`): whole
//!    constrained problems with per-instance penalties, each job a full
//!    Algorithm-1 run, bit-identical to calling the runner directly;
//! 3. **cancel and resume** (`ControlledService`): a graceful shutdown
//!    checkpoints in-flight jobs into a directory, and a later resume
//!    finishes them bit-identically to never-interrupted runs.

use saim_core::{ConstrainedProblem, SaimConfig, SaimRunner};
use saim_knapsack::generate;
use saim_machine::service::{
    solver_service, ControlledService, JobSpec, ServiceConfig, SolverSpec, SubmitError,
};
use saim_machine::{derive_seed, BetaSchedule, Dynamics, EnsembleConfig, RunController};
use std::error::Error;

fn main() -> Result<(), Box<dyn Error>> {
    // ---- layer 1: raw solver jobs through the machine-level service ----
    let solver = SolverSpec::Ensemble(EnsembleConfig {
        replicas: 4,
        threads: 1, // jobs are the unit of parallelism here
        batch_width: 0,
        schedule: BetaSchedule::linear(10.0),
        mcs_per_run: 500,
        dynamics: Dynamics::Gibbs,
    });

    // eight QKP instances of growing size, one job each
    let mut specs = Vec::new();
    for i in 0..8u64 {
        let instance = generate::qkp(30 + 10 * i as usize, 0.5, 100 + i)?;
        let encoded = instance.encode()?;
        let qubo = saim_core::penalty_qubo(&encoded, encoded.penalty_for_alpha(2.0))?;
        specs.push(
            JobSpec::new(i, qubo, solver.clone(), derive_seed(42, i))
                .with_instance_digest(instance.digest()),
        );
    }

    let mut service = solver_service(ServiceConfig {
        workers: 0,     // all cores
        queue_depth: 4, // small on purpose, to show backpressure
    });

    println!("submitting {} jobs (queue depth 4):", specs.len());
    let mut streamed = Vec::new();
    for spec in &specs {
        // non-blocking submission with a recv fallback: when the queue is
        // momentarily full, consume a finished result to make room
        let mut pending = spec.clone();
        loop {
            match service.try_submit(pending) {
                Ok(index) => {
                    println!("  job {:>2} queued (submission #{index})", spec.job);
                    break;
                }
                Err(SubmitError::Full(back)) => {
                    if let Some(result) = service.recv() {
                        let result = result.expect("solver jobs do not panic");
                        println!(
                            "  ... queue full; drained job {} (E = {:+.1}) to make room",
                            result.value.job, result.value.best_energy
                        );
                        streamed.push(result.value);
                    }
                    pending = back;
                }
            }
        }
    }
    // results arrive in completion order; the `job` id re-associates them
    while let Some(result) = service.recv() {
        let result = result.expect("solver jobs do not panic");
        println!(
            "  done: job {:>2} after submission #{:>2}  E = {:+9.1}  ({} sweeps, {:.1} ms)",
            result.value.job,
            result.submitted,
            result.value.best_energy,
            result.value.mcs,
            result.value.elapsed_ns as f64 / 1e6,
        );
        streamed.push(result.value);
    }
    println!("  {} results collected\n", streamed.len());

    // the wire forms round-trip byte-for-byte — what a network front-end
    // would actually ship
    let json = specs[0].to_json();
    assert_eq!(JobSpec::from_json(&json)?.to_json(), json);
    println!("spec 0 on the wire: {} bytes of JSON", json.len());

    // ---- layer 2: whole SAIM runs as jobs ----------------------------
    let jobs: Vec<(SaimConfig, _)> = (0..4u64)
        .map(|i| {
            let instance =
                generate::qkp(25 + 5 * i as usize, 0.5, 200 + i).expect("valid parameters");
            let encoded = instance.encode().expect("instance encodes");
            let config = SaimConfig {
                penalty: encoded.penalty_for_alpha(2.0),
                eta: 20.0,
                iterations: 60,
                seed: derive_seed(7, i),
            };
            (config, encoded)
        })
        .collect();
    let outcomes = SaimRunner::run_jobs(jobs, &solver, ServiceConfig::default());
    println!("\nSAIM jobs (outcomes in job order):");
    for (i, outcome) in outcomes.iter().enumerate() {
        match &outcome.best {
            Some(best) => println!(
                "  instance {i}: best feasible profit {:>6}  ({:.0}% of iterations feasible)",
                -best.cost,
                100.0 * outcome.feasibility
            ),
            None => println!("  instance {i}: no feasible sample"),
        }
    }

    // ---- layer 3: cooperative shutdown, checkpoint, and resume -------
    // a ControlledService runs every job under one shared RunController;
    // shutdown_to() drains the fleet, checkpointing in-flight jobs and
    // persisting still-queued specs into a directory. Here every job stops
    // deterministically after 100 sweeps — standing in for an operator
    // interrupt or a deadline landing mid-run.
    let dir = std::env::temp_dir().join(format!("saim-job-service-demo-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let ctrl = RunController::unlimited()
        .with_stop_after(100)
        .with_poll_interval(1);
    let mut controlled = ControlledService::start(
        ServiceConfig {
            workers: 0,
            queue_depth: 8,
        },
        ctrl,
    );
    for spec in &specs {
        controlled.submit(spec.clone());
    }
    let report = controlled.shutdown_to(&dir)?;
    println!(
        "\ngraceful shutdown: {} finished, {} checkpointed mid-run, {} persisted unstarted",
        report.finished.len(),
        report.checkpointed,
        report.pending,
    );

    // ... a process restart later: resume() re-submits everything the
    // directory holds, and each completed job is bit-identical to a run
    // that was never interrupted — same energies, states, and RNG stream
    let mut resumed =
        ControlledService::resume(ServiceConfig::default(), RunController::unlimited(), &dir)?;
    while let Some(result) = resumed.recv() {
        let run = result.expect("solver jobs do not panic").value;
        let uninterrupted = specs[run.outcome.job as usize].run();
        assert_eq!(run.outcome.canonical(), uninterrupted.canonical());
        println!(
            "  resumed job {:>2}: E = {:+9.1} over {} sweeps — bit-identical to uninterrupted",
            run.outcome.job, run.outcome.best_energy, run.outcome.mcs,
        );
    }
    let _ = std::fs::remove_dir_all(&dir);
    Ok(())
}
