//! Max-cut on the raw p-bit Ising machine — the *unconstrained* workload
//! Ising machines were built for (paper introduction: minimizing eq. 1 is
//! equivalent to maximizing a graph cut with `W_ij = −J_ij`).
//!
//! ```text
//! cargo run -p saim-core --release --example maxcut
//! ```
//!
//! No penalties, no Lagrange multipliers: just the graph → Ising mapping and
//! annealed Gibbs sampling, demonstrating the substrate SAIM builds on. The
//! annealer is compared with greedy descent and, on the small graph, the
//! exact optimum.

use saim_ising::graph::Graph;
use saim_ising::BinaryState;
use saim_machine::{BetaSchedule, GreedyDescent, IsingSolver, SimulatedAnnealing};
use std::error::Error;

/// A deterministic pseudo-random weighted graph.
fn ring_with_chords(n: usize) -> Result<Graph, Box<dyn Error>> {
    let mut g = Graph::new(n);
    for i in 0..n {
        g.add_edge(i, (i + 1) % n, 1.0 + (i % 3) as f64)?;
        if i % 2 == 0 {
            g.add_edge(i, (i + n / 2) % n, 2.0)?;
        }
    }
    Ok(g)
}

fn main() -> Result<(), Box<dyn Error>> {
    // small graph: verify against brute force
    let small = ring_with_chords(16)?;
    let model = small.to_ising();
    let mut sa = SimulatedAnnealing::new(BetaSchedule::linear(8.0), 1500, 3);
    let out = sa.solve(&model);
    let sa_cut = small.cut_weight(&out.best);

    let exact_cut = (0u64..(1 << small.len()))
        .map(|mask| small.cut_weight(&BinaryState::from_mask(mask, small.len()).to_spins()))
        .fold(f64::NEG_INFINITY, f64::max);
    println!(
        "16-vertex graph: annealed cut = {sa_cut}, exact max cut = {exact_cut} ({})",
        if (sa_cut - exact_cut).abs() < 1e-9 {
            "optimal"
        } else {
            "suboptimal"
        }
    );
    // the energy identity cut = (W_total - H)/2
    let recovered = small.cut_from_energy(out.best_energy);
    println!("energy identity check: cut from H = {recovered}, direct = {sa_cut}");

    // larger graph: annealing vs greedy descent
    let big = ring_with_chords(400)?;
    let model = big.to_ising();
    let mut sa = SimulatedAnnealing::new(BetaSchedule::linear(6.0), 800, 11);
    let annealed = big.cut_weight(&sa.solve(&model).best);
    let mut gd = GreedyDescent::new(11);
    let greedy = big.cut_weight(&gd.solve(&model).best);
    println!("\n400-vertex graph (sparse CSR couplings):");
    println!("  annealed cut: {annealed}");
    println!("  greedy descent cut: {greedy}");
    println!("  total edge weight: {}", big.total_weight());
    if annealed < greedy {
        println!("  note: greedy won this seed — rerun with more sweeps to flip it");
    }
    Ok(())
}
