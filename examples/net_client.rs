//! A network client session against the NDJSON job server: connect,
//! submit with deadline and priority, ride out an overloaded fleet with
//! deterministic jittered backoff, and stream the results.
//!
//! ```text
//! cargo run --release --example net_client
//! ```
//!
//! The example is self-contained: it boots the same `Frontend` the
//! `saim-server` binary serves, on an OS-assigned loopback port, then
//! talks to it exclusively through the TCP wire — every line on the
//! socket is a frame you could also type into `saim-server --stdio`.
//! Shown in order:
//!
//! 1. **connect + hello** — open the NDJSON session and declare a
//!    fair-share weight;
//! 2. **submit → stream** — queue a batch of QKP jobs with priorities
//!    and per-job deadlines, then read acceptances and outcomes off the
//!    ordered response stream;
//! 3. **overload + backoff** — against a deliberately tiny admission
//!    budget, `submit_retrying` absorbs the typed `overloaded` sheds with
//!    seeded exponential backoff until the fleet has room;
//! 4. **typed rejection** — a malformed line earns a machine-readable
//!    rejection code instead of a dropped connection.

use saim_core::ConstrainedProblem;
use saim_knapsack::generate;
use saim_machine::frontend::{Backoff, Frontend, FrontendConfig, NdjsonClient, Request, Response};
use saim_machine::service::{JobSpec, SolverSpec};
use saim_machine::{derive_seed, BetaSchedule, Dynamics, EnsembleConfig};
use std::error::Error;
use std::net::TcpListener;

fn main() -> Result<(), Box<dyn Error>> {
    // ---- a server fleet on a loopback port (stands in for saim-server) --
    let frontend = Frontend::start(FrontendConfig {
        workers: 2,
        max_queued: 2, // small on purpose: step 3 overloads it
        ..FrontendConfig::default()
    });
    let listener = TcpListener::bind("127.0.0.1:0")?;
    let addr = listener.local_addr()?.to_string();
    frontend.serve(listener);
    println!("server: {} workers on {addr}", frontend.workers());

    // ---- 1. connect + hello --------------------------------------------
    let mut client = NdjsonClient::connect(&addr)?;
    client.send(&Request::Hello { weight: 2 })?;

    // ---- 2. submit a batch with priorities and deadlines ---------------
    let solver = SolverSpec::Ensemble(EnsembleConfig {
        replicas: 3,
        threads: 1,
        batch_width: 0,
        schedule: BetaSchedule::linear(8.0),
        mcs_per_run: 300,
        dynamics: Dynamics::Gibbs,
    });
    let mut backoff = Backoff::new(7, 10, 500);
    let jobs = 6u64;
    let mut done = 0u64;
    let print_outcome = |outcome: &saim_machine::service::JobOutcome| {
        println!(
            "job {:>2} done: E = {:>8.2}  ({} MCS)",
            outcome.job, outcome.best_energy, outcome.mcs
        );
    };
    for job in 0..jobs {
        let instance = generate::qkp(24 + 4 * job as usize, 0.5, 60 + job)?;
        let encoded = instance.encode()?;
        let qubo = saim_core::penalty_qubo(&encoded, encoded.penalty_for_alpha(2.0))?;
        let spec = JobSpec::new(job, qubo, solver.clone(), derive_seed(9, job))
            .with_instance_digest(instance.digest());
        // odd jobs are urgent: higher priority band, 30-second deadline
        let (priority, deadline_ms) = if job % 2 == 1 {
            (2, Some(30_000))
        } else {
            (0, None)
        };
        // ---- 3. the admission budget is 2, so the tail of the batch is
        // shed with typed `overloaded` hints; backoff rides them out -----
        // earlier jobs' outcomes owed on the ordered stream may arrive
        // before this submit's acceptance — count them as they pass
        let mut response =
            client.submit_retrying(&spec, priority, deadline_ms, &mut backoff, 64)?;
        loop {
            match response {
                Response::Accepted { job } => {
                    println!("accepted job {job}");
                    break;
                }
                Response::Outcome { ref outcome } => {
                    print_outcome(outcome);
                    done += 1;
                    response = client.recv()?;
                }
                other => {
                    println!("unexpected frame: {other:?}");
                    break;
                }
            }
        }
        backoff.reset(); // next job starts its backoff schedule fresh
    }

    // ---- stream the remaining outcomes ---------------------------------
    while done < jobs {
        if let Response::Outcome { outcome } = client.recv()? {
            print_outcome(&outcome);
            done += 1;
        }
    }

    // ---- 4. malformed frames earn typed rejections ---------------------
    client.send_raw(b"{\"schema\":3,\"frame\":\"teleport\"}\n")?;
    if let Response::Rejected { code, error } = client.recv()? {
        println!("rejected as expected: code={code} ({error})");
    }

    let fleet = frontend.fleet_stats();
    println!(
        "fleet: {} accepted, {} completed, {} shed while overloaded",
        fleet.accepted, fleet.completed, fleet.rejected
    );
    Ok(())
}
