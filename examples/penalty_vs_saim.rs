//! Head-to-head: classical penalty method vs SAIM on one QKP instance —
//! the paper's Fig. 1/2 story in runnable form.
//!
//! ```text
//! cargo run -p saim-core --release --example penalty_vs_saim
//! ```
//!
//! Both methods get the same machine and total sweep budget. The penalty
//! method is run at several fixed `P` values to expose its dilemma (small P:
//! infeasible minima; large P: rugged landscape); SAIM uses the small
//! `P = 2dN` and lets λ do the rest.

use saim_core::{ConstrainedProblem, PenaltyMethod, SaimConfig, SaimRunner};
use saim_knapsack::generate;
use saim_machine::{derive_seed, BetaSchedule, SimulatedAnnealing};
use std::error::Error;

fn main() -> Result<(), Box<dyn Error>> {
    let instance = generate::qkp(50, 0.5, 99)?;
    let encoded = instance.encode()?;
    let runs = 120;
    let mcs = 1000;
    println!(
        "instance {}: N = {} (+{} slack), capacity {}",
        instance.label(),
        instance.len(),
        encoded.slack().num_bits(),
        instance.capacity()
    );
    println!("budget per method: {runs} runs x {mcs} MCS\n");

    // --- penalty method across fixed P values
    println!("penalty method (fixed P, best feasible sample over all runs):");
    for alpha in [2.0, 20.0, 100.0, 400.0] {
        let p = encoded.penalty_for_alpha(alpha);
        let solver = SimulatedAnnealing::new(
            BetaSchedule::linear(10.0),
            mcs,
            derive_seed(99, alpha as u64),
        );
        let out = PenaltyMethod::new(p, runs)?.run(&encoded, solver)?;
        match &out.best {
            Some((_, cost)) => println!(
                "  P = {alpha:>5}dN: best profit {:>6}, feasibility {:>5.1}%",
                -cost,
                100.0 * out.feasibility
            ),
            None => println!(
                "  P = {alpha:>5}dN: NO feasible sample ({}% feasibility) — P below critical",
                100.0 * out.feasibility
            ),
        }
    }

    // --- SAIM at the small P
    let config = SaimConfig {
        penalty: encoded.penalty_for_alpha(2.0),
        eta: 20.0,
        iterations: runs,
        seed: 99,
    };
    let solver = SimulatedAnnealing::new(BetaSchedule::linear(10.0), mcs, derive_seed(99, 1000));
    let outcome = SaimRunner::new(config).run(&encoded, solver);
    println!("\nSAIM (P = 2dN, λ self-adapted):");
    match &outcome.best {
        Some(best) => println!(
            "  best profit {:>6} at iteration {}, feasibility {:.1}%, final λ = {:.2}",
            -best.cost,
            best.iteration,
            100.0 * outcome.feasibility,
            outcome.final_lambda[0]
        ),
        None => println!("  no feasible sample — increase iterations"),
    }
    println!(
        "\nthe point: the penalty method needs the right P per instance; SAIM finds the\n\
         equivalent constraint pressure automatically from the same small P."
    );
    Ok(())
}
