//! Capital budgeting / portfolio selection as a multidimensional knapsack,
//! solved with SAIM — one of the constrained applications motivating the
//! paper's introduction ("constraints on limited resources are found in
//! capital budgeting, portfolio optimization, or production planning").
//!
//! ```text
//! cargo run -p saim-core --release --example portfolio
//! ```
//!
//! We pick a subset of candidate projects maximizing expected return under
//! three simultaneous resource limits (capital, engineering head-count,
//! compliance review hours), then cross-check SAIM against the exact
//! branch-and-bound reference.

use saim_core::{ConstrainedProblem, SaimConfig, SaimRunner};
use saim_exact::bb::{self, BbLimits};
use saim_knapsack::MkpInstance;
use saim_machine::{BetaSchedule, SimulatedAnnealing};
use std::error::Error;

fn main() -> Result<(), Box<dyn Error>> {
    // 14 candidate projects with expected returns (k$)
    let names = [
        "datacenter-retrofit",
        "edge-cache",
        "mobile-app-v2",
        "ml-pipeline",
        "billing-rework",
        "iot-gateway",
        "partner-api",
        "security-audit",
        "greenfield-cms",
        "latency-program",
        "ads-platform",
        "sso-rollout",
        "warehouse-robots",
        "support-portal",
    ];
    let returns = vec![
        180, 95, 130, 220, 75, 60, 110, 45, 150, 85, 240, 55, 200, 70,
    ];
    // resource consumption per project: capital (k$), engineers, review hours
    let capital = vec![120, 40, 80, 150, 30, 25, 60, 20, 90, 45, 160, 35, 140, 30];
    let engineers = vec![6, 3, 5, 8, 2, 2, 4, 1, 6, 3, 9, 2, 7, 2];
    let review = vec![20, 10, 25, 40, 15, 10, 20, 30, 25, 10, 45, 25, 35, 10];
    // budgets: 500 k$ capital, 25 engineers, 120 review hours
    let instance = MkpInstance::new(
        returns.clone(),
        vec![capital.clone(), engineers.clone(), review.clone()],
        vec![500, 25, 120],
    )?
    .with_label("portfolio-14-3");

    let encoded = instance.encode()?;
    println!(
        "portfolio: {} projects, {} resource constraints, {} Ising spins after slack",
        instance.len(),
        instance.num_constraints(),
        encoded.num_vars()
    );

    // the paper's MKP parameters: P = 5dN ≈ 10, η = 0.05, β up to 50
    let config = SaimConfig {
        penalty: encoded.penalty_for_alpha(5.0),
        eta: 0.05,
        iterations: 1500,
        seed: 7,
    };
    let solver = SimulatedAnnealing::new(BetaSchedule::linear(50.0), 500, 7);
    let outcome = SaimRunner::new(config).run(&encoded, solver);
    let best = outcome.best.as_ref().ok_or("no feasible portfolio found")?;
    let selection = encoded.decode(&best.state);

    println!("\nselected projects (expected return {} k$):", -best.cost);
    for (i, name) in names.iter().enumerate() {
        if selection[i] == 1 {
            println!(
                "  - {name}: return {} k$, capital {}, engineers {}, review {}h",
                returns[i], capital[i], engineers[i], review[i]
            );
        }
    }
    println!(
        "\nresource usage: capital {}/500 k$, engineers {}/25, review {}/120 h",
        instance.load(&selection, 0),
        instance.load(&selection, 1),
        instance.load(&selection, 2)
    );

    // cross-check against the exact reference
    let exact = bb::solve_mkp(&instance, BbLimits::default());
    println!(
        "\nexact optimum (branch & bound): {} k$ — SAIM reached {:.1}% of it",
        exact.profit,
        100.0 * (-best.cost) / exact.profit as f64
    );
    Ok(())
}
