//! Quickstart: solve a small quadratic knapsack problem with the
//! Self-Adaptive Ising Machine.
//!
//! ```text
//! cargo run -p saim-core --release --example quickstart
//! ```
//!
//! The flow is the one every SAIM application follows:
//!
//! 1. state the problem (here: a QKP instance),
//! 2. encode it for the Ising machine (normalization + binary slack),
//! 3. pick the paper's parameters (`P = 2dN`, η = 20, linear β schedule),
//! 4. run Algorithm 1 and read back the best feasible sample.

use saim_core::{ConstrainedProblem, SaimConfig, SaimRunner};
use saim_knapsack::QkpInstance;
use saim_machine::{BetaSchedule, SimulatedAnnealing};
use std::error::Error;

fn main() -> Result<(), Box<dyn Error>> {
    // 1. A 12-item quadratic knapsack: item values, synergy values for pairs
    //    packed together, weights, and one capacity.
    let values = vec![64, 250, 21, 122, 15, 6, 28, 34, 12, 90, 55, 44];
    let pairs = vec![
        (0, 1, 45),
        (0, 3, 20),
        (1, 2, 15),
        (2, 5, 30),
        (3, 4, 12),
        (4, 7, 25),
        (5, 8, 18),
        (6, 9, 40),
        (7, 10, 22),
        (8, 11, 35),
        (9, 11, 28),
        (1, 6, 50),
    ];
    let weights = vec![26, 11, 8, 3, 5, 9, 14, 7, 12, 10, 6, 4];
    let capacity = 42;
    let instance = QkpInstance::new(values, pairs, weights, capacity)?.with_label("quickstart-12");

    // 2. Encode: normalizes W, h, A, b and appends binary slack bits that
    //    turn `weight ≤ capacity` into an equality the IM can penalize.
    let encoded = instance.encode()?;
    println!(
        "instance {}: {} items + {} slack bits, density {:.2}",
        instance.label(),
        instance.len(),
        encoded.slack().num_bits(),
        instance.density()
    );

    // 3. The paper's QKP parameters: P = 2dN (deliberately below critical),
    //    η = 20, and a linear 0→10 β schedule over 1000-sweep runs.
    let config = SaimConfig {
        penalty: encoded.penalty_for_alpha(2.0),
        eta: 20.0,
        iterations: 150,
        seed: 42,
    };
    let solver = SimulatedAnnealing::new(BetaSchedule::linear(10.0), 1000, 42);

    // 4. Run Algorithm 1.
    let outcome = SaimRunner::new(config).run(&encoded, solver);
    let best = outcome.best.as_ref().ok_or("no feasible sample found")?;
    let selection = encoded.decode(&best.state);

    println!(
        "best feasible profit: {} (found at iteration {})",
        -best.cost, best.iteration
    );
    println!(
        "packed items: {:?}",
        (0..selection.len())
            .filter(|&i| selection[i] == 1)
            .collect::<Vec<_>>()
    );
    println!(
        "weight used: {}/{}",
        instance.weight(&selection),
        instance.capacity()
    );
    println!(
        "feasible samples: {:.0}% of {} runs; final λ = {:.2}",
        100.0 * outcome.feasibility,
        outcome.records.len(),
        outcome.final_lambda[0]
    );
    Ok(())
}
