//! Workspace facade crate.
//!
//! Re-exports every SAIM crate under one roof so the repo-level integration
//! tests (`tests/`) and examples (`examples/`) have a single package to hang
//! off, and downstream users can depend on `saim` alone.

#![forbid(unsafe_code)]

pub use saim_core as core;
pub use saim_exact as exact;
pub use saim_heuristics as heuristics;
pub use saim_ising as ising;
pub use saim_knapsack as knapsack;
pub use saim_machine as machine;
