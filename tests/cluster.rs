//! Loopback integration tests of the sharded cluster router: in-process
//! `saim-server` fleets behind `saim_machine::cluster`, with every backend
//! fault scripted through `frontend::faults::BackendFaultPlan` (kill,
//! partition + delayed heal, duplicate-outcome replay) and worker holds
//! scripted through each backend's own `FaultPlan`.
//!
//! The headline invariant is **exactly-once settlement**: K submitted jobs
//! observe exactly K terminal frames, each bit-identical to the direct
//! `spec.run()` oracle, across backend kills, drain/`--resume` restarts,
//! partitions that heal late, and at-least-once transports that replay
//! outcomes. CI runs this suite in the same 1/2/8-thread matrix as
//! `tests/determinism.rs` (`SAIM_DETERMINISM_THREADS`).

use std::collections::HashMap;
use std::net::TcpListener;
use std::path::PathBuf;
use std::sync::Arc;
use std::time::{Duration, Instant};

use saim_ising::QuboBuilder;
use saim_machine::cluster::{
    BackendLink, BackendState, Cluster, ClusterConfig, FaultyLink, ManagedBackend,
    ReplicationPolicy, RouterHandle,
};
use saim_machine::frontend::{
    faults::{BackendFaultPlan, FaultPlan},
    FrontendConfig, NdjsonClient, Request, Response,
};
use saim_machine::service::{JobOutcome, JobSpec, SolverSpec};
use saim_machine::OutcomeKind;

fn env_workers() -> usize {
    std::env::var("SAIM_DETERMINISM_THREADS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(2)
}

/// A fast deterministic job; distinct digests spread jobs across shards.
fn quick_spec(job: u64, seed: u64) -> JobSpec {
    let mut b = QuboBuilder::new(5);
    for i in 0..5 {
        b.add_linear(i, -1.0).expect("index in range");
    }
    b.add_pair(0, 1, 0.5).expect("indices in range");
    JobSpec::new(job, b.build(), SolverSpec::Descent { max_sweeps: 40 }, seed)
        .with_instance_digest(job.wrapping_mul(0x9E37_79B9) ^ 0xC1u64)
}

/// A unique scratch directory under the system tmpdir.
fn scratch_dir(tag: &str) -> PathBuf {
    let path = std::env::temp_dir().join(format!("saim-cluster-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&path);
    path
}

fn backend_config(faults: Option<Arc<FaultPlan>>) -> FrontendConfig {
    FrontendConfig {
        workers: env_workers(),
        faults,
        ..FrontendConfig::default()
    }
}

fn fast_probes() -> ClusterConfig {
    ClusterConfig {
        probe_interval: Duration::from_millis(10),
        ..ClusterConfig::default()
    }
}

/// A k = 2 hedged-routing config. The probe interval doubles as the
/// experiment control: make it long and the breaker cannot rescue anything
/// inside the test window, so any fast settlement is speculation's doing.
fn hedged_config(probe: Duration, hedge_delay_ms: u64, cap: usize) -> ClusterConfig {
    ClusterConfig {
        probe_interval: probe,
        replication: ReplicationPolicy {
            k: 2,
            hedge_delay_ms,
            max_extra_load: cap,
        },
        ..ClusterConfig::default()
    }
}

/// Collects exactly `n` outcome frames from a router handle, panicking on
/// duplicates, failures, or a stall.
fn collect_outcomes(handle: &RouterHandle, n: usize) -> HashMap<u64, JobOutcome> {
    let mut outcomes = HashMap::new();
    let deadline = Instant::now() + Duration::from_secs(120);
    while outcomes.len() < n {
        assert!(
            Instant::now() < deadline,
            "timed out with {}/{n} outcomes settled",
            outcomes.len()
        );
        match handle.recv_timeout(Duration::from_millis(200)) {
            Some(Response::Outcome { outcome }) => {
                let job = outcome.job;
                assert!(
                    outcomes.insert(job, outcome).is_none(),
                    "job {job} delivered a second terminal frame"
                );
            }
            Some(Response::Accepted { .. }) | None => {}
            Some(other) => panic!("unexpected frame {other:?}"),
        }
    }
    outcomes
}

fn assert_oracle(outcomes: &HashMap<u64, JobOutcome>, specs: &[JobSpec]) {
    for spec in specs {
        let oracle = spec.run().canonical();
        let got = outcomes
            .get(&spec.job)
            .unwrap_or_else(|| panic!("job {} never settled", spec.job));
        assert_eq!(
            got.canonical(),
            oracle,
            "job {} diverged from the direct-run oracle",
            spec.job
        );
    }
}

fn wait_for<F: FnMut() -> bool>(mut ready: F, what: &str) {
    let deadline = Instant::now() + Duration::from_secs(60);
    while !ready() {
        assert!(Instant::now() < deadline, "timed out waiting for {what}");
        std::thread::sleep(Duration::from_millis(5));
    }
}

/// The tentpole proof, over a real TCP socket: K jobs across a backend
/// kill, failover, and a drain/`--resume` restart observe exactly K
/// terminal frames, each bit-identical to the direct-run oracle — and the
/// restarted shard's recovery stream (re-delivering the work that was
/// already failed over) is absorbed by settlement dedup, after which the
/// shard walks the half-open probe ritual back to `Up`.
#[test]
fn kills_and_restarts_settle_k_jobs_exactly_once_over_tcp() {
    let hold0 = Arc::new(FaultPlan::new());
    let plan = Arc::new(BackendFaultPlan::new());
    // arm the hold before the workers spawn: shard 0's share of the stream
    // is then guaranteed to be unsettled when the kill lands
    hold0.hold_workers();
    let mut b0 = ManagedBackend::start(
        backend_config(Some(Arc::clone(&hold0))),
        scratch_dir("kill-b0"),
    );
    let mut b1 = ManagedBackend::start(backend_config(None), scratch_dir("kill-b1"));
    let links: Vec<Box<dyn BackendLink>> = vec![
        Box::new(FaultyLink::new(b0.link(), Arc::clone(&plan), 0)),
        Box::new(FaultyLink::new(b1.link(), Arc::clone(&plan), 1)),
    ];
    let (cluster, _recovery) = Cluster::start(fast_probes(), links).expect("no journal");
    let listener = TcpListener::bind("127.0.0.1:0").expect("loopback bind");
    let addr = listener.local_addr().expect("bound").to_string();
    let serving = cluster.serve(listener);
    let specs: Vec<JobSpec> = (1..=8).map(|j| quick_spec(j, 90 + j)).collect();
    let mut client = NdjsonClient::connect(&addr).expect("connect");
    client.send(&Request::Hello { weight: 1 }).expect("hello");
    client
        .set_read_timeout(Duration::from_secs(30))
        .expect("timeout");
    for spec in &specs {
        client
            .send(&Request::Submit {
                spec: spec.clone(),
                priority: 0,
                deadline_ms: None,
            })
            .expect("submit");
    }
    // both shards must own part of the stream for the kill to mean anything
    wait_for(
        || cluster.stats().fleet.accepted == 8,
        "all submits admitted",
    );
    std::thread::sleep(Duration::from_millis(50)); // let the pumps forward
    plan.kill(0);
    wait_for(
        || cluster.backend_states()[0] == BackendState::Down,
        "shard 0 marked down",
    );
    assert!(
        cluster.stats().reroutes > 0,
        "the kill should have forced failovers (placement constants put \
         no jobs on shard 0 — adjust the digests)"
    );

    let mut outcomes = HashMap::new();
    let deadline = Instant::now() + Duration::from_secs(120);
    let mut accepted = 0;
    while outcomes.len() < specs.len() {
        assert!(Instant::now() < deadline, "outcomes stalled");
        match client.recv().expect("frame") {
            Response::Accepted { .. } => accepted += 1,
            Response::Outcome { outcome } => {
                let job = outcome.job;
                assert!(
                    outcomes.insert(job, outcome).is_none(),
                    "job {job} delivered twice"
                );
            }
            other => panic!("unexpected frame {other:?}"),
        }
    }
    assert_eq!(accepted, specs.len(), "one acceptance per job");
    assert_oracle(&outcomes, &specs);

    // restart the killed shard from its drain directory: the resumed jobs'
    // outcomes re-enter through the recovery link and must all be dropped
    // as duplicates, then the probe ritual re-admits the shard
    let rerouted = cluster.stats().reroutes;
    b0.drain().expect("drain shard 0");
    let link = b0.restart().expect("resume shard 0");
    // the restarted shard gets a fresh, fault-free plan — the old one still
    // has its kill switch thrown
    let healthy = Arc::new(BackendFaultPlan::new());
    cluster.attach_backend(0, Box::new(FaultyLink::new(link, healthy, 0)));
    wait_for(
        || cluster.backend_states()[0] == BackendState::Up,
        "shard 0 re-admitted",
    );
    wait_for(
        || cluster.stats().duplicates_dropped >= rerouted,
        "recovery stream deduplicated",
    );

    // the recovered shard takes new work again
    let extra = quick_spec(100, 7);
    client
        .send(&Request::Submit {
            spec: extra.clone(),
            priority: 0,
            deadline_ms: None,
        })
        .expect("submit");
    let mut tail = HashMap::new();
    loop {
        match client.recv().expect("frame") {
            Response::Accepted { .. } => {}
            Response::Outcome { outcome } => {
                tail.insert(outcome.job, outcome);
                break;
            }
            other => panic!("unexpected frame {other:?}"),
        }
    }
    assert_oracle(&tail, &[extra]);

    let report = cluster.shutdown();
    let _ = serving.join();
    assert_eq!(report.fleet.completed, 9, "every job settled exactly once");
    assert_eq!(report.unsettled, 0);
    b0.drain().expect("final drain shard 0");
    b1.drain().expect("final drain shard 1");
}

/// A partition (responses held, backend still computing) trips the breaker
/// and fails the shard's jobs over; the delayed heal then delivers exactly
/// the late duplicate outcomes settlement dedup must drop, and the healed
/// shard walks `Down → HalfOpen → Up`.
#[test]
fn partition_heal_late_duplicates_are_dropped() {
    let hold0 = Arc::new(FaultPlan::new());
    let plan = Arc::new(BackendFaultPlan::new());
    hold0.hold_workers(); // armed before the workers spawn
    let mut b0 = ManagedBackend::start(
        backend_config(Some(Arc::clone(&hold0))),
        scratch_dir("stall-b0"),
    );
    let mut b1 = ManagedBackend::start(backend_config(None), scratch_dir("stall-b1"));
    let links: Vec<Box<dyn BackendLink>> = vec![
        Box::new(FaultyLink::new(b0.link(), Arc::clone(&plan), 0)),
        Box::new(FaultyLink::new(b1.link(), Arc::clone(&plan), 1)),
    ];
    let (cluster, _recovery) = Cluster::start(fast_probes(), links).expect("no journal");
    let handle = cluster.connect();
    let specs: Vec<JobSpec> = (1..=8).map(|j| quick_spec(j, 30 + j)).collect();
    for spec in &specs {
        handle.submit(spec.clone(), 0, None);
    }
    wait_for(
        || cluster.stats().fleet.accepted == 8,
        "all submits admitted",
    );
    std::thread::sleep(Duration::from_millis(50));
    plan.stall(0);
    wait_for(
        || cluster.backend_states()[0] == BackendState::Down,
        "partitioned shard marked down",
    );
    let rerouted = cluster.stats().reroutes;
    assert!(rerouted > 0, "partition should have forced failovers");

    // the failed-over stream settles on the healthy shard
    let outcomes = collect_outcomes(&handle, specs.len());
    assert_oracle(&outcomes, &specs);

    // meanwhile the partitioned shard finishes its copies into the held
    // buffer; healing releases them late, in order — all duplicates now
    hold0.release_workers();
    std::thread::sleep(Duration::from_millis(100));
    plan.heal(0);
    wait_for(
        || cluster.stats().duplicates_dropped >= rerouted,
        "late outcomes deduplicated",
    );
    wait_for(
        || cluster.backend_states()[0] == BackendState::Up,
        "healed shard re-admitted",
    );

    let report = cluster.shutdown();
    assert_eq!(report.fleet.completed, 8);
    assert_eq!(report.unsettled, 0);
    b0.drain().expect("drain shard 0");
    b1.drain().expect("drain shard 1");
}

/// An at-least-once transport that replays every outcome twice still
/// settles each job exactly once.
#[test]
fn duplicate_outcome_replay_settles_each_job_once() {
    let plan = Arc::new(BackendFaultPlan::new());
    plan.duplicate_outcomes(0);
    let mut b0 = ManagedBackend::start(backend_config(None), scratch_dir("dup-b0"));
    let links: Vec<Box<dyn BackendLink>> =
        vec![Box::new(FaultyLink::new(b0.link(), Arc::clone(&plan), 0))];
    let (cluster, _recovery) = Cluster::start(fast_probes(), links).expect("no journal");
    let handle = cluster.connect();

    let specs: Vec<JobSpec> = (1..=6).map(|j| quick_spec(j, 70 + j)).collect();
    for spec in &specs {
        handle.submit(spec.clone(), 0, None);
    }
    let outcomes = collect_outcomes(&handle, specs.len());
    assert_oracle(&outcomes, &specs);
    wait_for(
        || cluster.stats().duplicates_dropped >= specs.len() as u64,
        "every replayed outcome dropped",
    );
    let report = cluster.shutdown();
    assert_eq!(report.fleet.completed, 6);
    assert_eq!(report.unsettled, 0);
    b0.drain().expect("drain");
}

/// With every shard down the router sheds with `overloaded` — it never
/// hangs and never silently drops a submit.
#[test]
fn fully_down_fleet_sheds_with_overloaded() {
    let plan = Arc::new(BackendFaultPlan::new());
    let mut b0 = ManagedBackend::start(backend_config(None), scratch_dir("shed-b0"));
    let mut b1 = ManagedBackend::start(backend_config(None), scratch_dir("shed-b1"));
    let links: Vec<Box<dyn BackendLink>> = vec![
        Box::new(FaultyLink::new(b0.link(), Arc::clone(&plan), 0)),
        Box::new(FaultyLink::new(b1.link(), Arc::clone(&plan), 1)),
    ];
    let (cluster, _recovery) = Cluster::start(fast_probes(), links).expect("no journal");
    let handle = cluster.connect();

    plan.kill(0);
    plan.kill(1);
    wait_for(
        || {
            cluster
                .backend_states()
                .iter()
                .all(|s| *s == BackendState::Down)
        },
        "both shards down",
    );
    handle.submit(quick_spec(1, 5), 0, None);
    match handle.recv_timeout(Duration::from_secs(10)) {
        Some(Response::Overloaded { retry_after_ms }) => assert!(retry_after_ms > 0),
        other => panic!("expected an overloaded shed, got {other:?}"),
    }
    let report = cluster.shutdown();
    assert_eq!(report.fleet.rejected, 1);
    assert_eq!(report.fleet.accepted, 0);
    b0.drain().expect("drain");
    b1.drain().expect("drain");
}

/// The hedging tentpole: with one shard stalled (it receives work but its
/// responses never arrive) and the probe interval too long for any breaker
/// verdict, k = 2 speculation alone must settle every job exactly once,
/// bit-identical, well before the first probe could even be missed.
#[test]
fn hedged_replicas_rescue_a_stalled_shard_before_any_probe_verdict() {
    let plan = Arc::new(BackendFaultPlan::new());
    plan.stall(0);
    let mut b0 = ManagedBackend::start(backend_config(None), scratch_dir("hedge-b0"));
    let mut b1 = ManagedBackend::start(backend_config(None), scratch_dir("hedge-b1"));
    let links: Vec<Box<dyn BackendLink>> = vec![
        Box::new(FaultyLink::new(b0.link(), Arc::clone(&plan), 0)),
        Box::new(FaultyLink::new(b1.link(), Arc::clone(&plan), 1)),
    ];
    let (cluster, _recovery) =
        Cluster::start(hedged_config(Duration::from_secs(5), 25, 8), links).expect("no journal");
    let handle = cluster.connect();

    let specs: Vec<JobSpec> = (1..=8).map(|j| quick_spec(j, 40 + j)).collect();
    let started = Instant::now();
    for spec in &specs {
        handle.submit(spec.clone(), 0, None);
    }
    let outcomes = collect_outcomes(&handle, specs.len());
    let settled_in = started.elapsed();
    assert_oracle(&outcomes, &specs);
    assert!(
        settled_in < Duration::from_secs(4),
        "all jobs settled in {settled_in:?} — inside the first probe \
         interval, so speculation (not failover) did the rescue"
    );

    let stats = cluster.stats();
    assert!(
        stats.hedges.fired > 0,
        "the stalled shard's jobs must have fired hedges (placement \
         constants put no jobs on shard 0 — adjust the seeds)"
    );
    assert!(stats.hedges.won > 0, "a hedge replica won a settlement");
    assert_eq!(
        stats.hedges.won + stats.hedges.wasted,
        stats.hedges.fired,
        "every fired hedge is binned as won or wasted once all jobs settle"
    );
    assert_eq!(stats.outcome_mismatches, 0);
    assert_eq!(stats.reroutes, 0, "no breaker verdict was ever reached");

    let report = cluster.shutdown();
    assert_eq!(report.fleet.completed, 8);
    assert_eq!(report.unsettled, 0);
    plan.heal(0);
    b0.drain().expect("drain shard 0");
    b1.drain().expect("drain shard 1");
}

/// The speculation control: on a healthy fleet whose jobs settle far
/// faster than the hedge delay, k = 2 never fires a single replica — the
/// deadline-aware delay makes hedging free when the fleet is fast.
#[test]
fn healthy_fleet_fires_no_hedges() {
    let plan = Arc::new(BackendFaultPlan::new());
    let mut b0 = ManagedBackend::start(backend_config(None), scratch_dir("nohedge-b0"));
    let mut b1 = ManagedBackend::start(backend_config(None), scratch_dir("nohedge-b1"));
    let links: Vec<Box<dyn BackendLink>> = vec![
        Box::new(FaultyLink::new(b0.link(), Arc::clone(&plan), 0)),
        Box::new(FaultyLink::new(b1.link(), Arc::clone(&plan), 1)),
    ];
    let (cluster, _recovery) =
        Cluster::start(hedged_config(Duration::from_millis(10), 500, 8), links)
            .expect("no journal");
    let handle = cluster.connect();

    let specs: Vec<JobSpec> = (1..=8).map(|j| quick_spec(j, 50 + j)).collect();
    for spec in &specs {
        handle.submit(spec.clone(), 0, None);
    }
    let outcomes = collect_outcomes(&handle, specs.len());
    assert_oracle(&outcomes, &specs);

    let stats = cluster.stats();
    assert_eq!(
        stats.hedges.fired, 0,
        "every job settled inside the hedge delay, so no replica ever fired"
    );
    assert_eq!(stats.hedges.suppressed, 0);
    assert_eq!(stats.duplicates_dropped, 0);

    let report = cluster.shutdown();
    assert_eq!(report.fleet.completed, 8);
    assert_eq!(report.unsettled, 0);
    b0.drain().expect("drain shard 0");
    b1.drain().expect("drain shard 1");
}

/// A zero extra-load budget suppresses every due hedge (counted, never
/// fired), degrading k = 2 to pure breaker-driven failover — which must
/// still settle every job exactly once.
#[test]
fn zero_hedge_budget_suppresses_speculation_and_fails_over() {
    let plan = Arc::new(BackendFaultPlan::new());
    plan.stall(0);
    let mut b0 = ManagedBackend::start(backend_config(None), scratch_dir("cap0-b0"));
    let mut b1 = ManagedBackend::start(backend_config(None), scratch_dir("cap0-b1"));
    let links: Vec<Box<dyn BackendLink>> = vec![
        Box::new(FaultyLink::new(b0.link(), Arc::clone(&plan), 0)),
        Box::new(FaultyLink::new(b1.link(), Arc::clone(&plan), 1)),
    ];
    let (cluster, _recovery) =
        Cluster::start(hedged_config(Duration::from_millis(50), 25, 0), links).expect("no journal");
    let handle = cluster.connect();

    let specs: Vec<JobSpec> = (1..=8).map(|j| quick_spec(j, 40 + j)).collect();
    for spec in &specs {
        handle.submit(spec.clone(), 0, None);
    }
    let outcomes = collect_outcomes(&handle, specs.len());
    assert_oracle(&outcomes, &specs);

    let stats = cluster.stats();
    assert_eq!(stats.hedges.fired, 0, "a zero budget never fires a hedge");
    assert_eq!(stats.hedges.won, 0);
    assert!(
        stats.hedges.suppressed > 0,
        "the stalled shard's due hedges were deferred, visibly"
    );
    assert!(
        stats.reroutes > 0,
        "with speculation off, only the breaker could have rescued the \
         stalled shard's jobs"
    );

    let report = cluster.shutdown();
    assert_eq!(report.fleet.completed, 8);
    assert_eq!(report.unsettled, 0);
    plan.heal(0);
    b0.drain().expect("drain shard 0");
    b1.drain().expect("drain shard 1");
}

/// The determinism alarm: a stalled shard that also corrupts its outcomes
/// (the wrong-seed script) loses every settlement race; when the
/// partition heals, its late corrupted outcomes must be dropped as
/// duplicates AND counted as outcome mismatches — a correctness signal,
/// never a second terminal frame.
#[test]
fn corrupt_late_loser_raises_the_outcome_mismatch_alarm() {
    let plan = Arc::new(BackendFaultPlan::new());
    plan.stall(0);
    plan.corrupt_outcomes(0);
    let mut b0 = ManagedBackend::start(backend_config(None), scratch_dir("mismatch-b0"));
    let mut b1 = ManagedBackend::start(backend_config(None), scratch_dir("mismatch-b1"));
    let links: Vec<Box<dyn BackendLink>> = vec![
        Box::new(FaultyLink::new(b0.link(), Arc::clone(&plan), 0)),
        Box::new(FaultyLink::new(b1.link(), Arc::clone(&plan), 1)),
    ];
    let (cluster, _recovery) =
        Cluster::start(hedged_config(Duration::from_secs(5), 25, 8), links).expect("no journal");
    let handle = cluster.connect();

    let specs: Vec<JobSpec> = (1..=8).map(|j| quick_spec(j, 40 + j)).collect();
    for spec in &specs {
        handle.submit(spec.clone(), 0, None);
    }
    let outcomes = collect_outcomes(&handle, specs.len());
    // every winner came from the healthy shard, so the corruption never
    // reaches a client
    assert_oracle(&outcomes, &specs);
    assert_eq!(cluster.stats().outcome_mismatches, 0);

    // heal the partition: the stalled shard's corrupted completions arrive
    // late, lose the dedup race, and trip the alarm
    plan.heal(0);
    wait_for(
        || cluster.stats().outcome_mismatches >= 1,
        "the late corrupted outcome to trip the mismatch alarm",
    );
    wait_for(
        || cluster.stats().duplicates_dropped >= 1,
        "the late outcome also counted as a dropped duplicate",
    );
    // no second terminal frame reaches the client — only stray acks drain
    while let Some(frame) = handle.recv_timeout(Duration::from_millis(200)) {
        assert!(
            matches!(frame, Response::Accepted { .. }),
            "a dropped duplicate must never surface as {frame:?}"
        );
    }

    let report = cluster.shutdown();
    assert!(report.outcome_mismatches >= 1);
    assert_eq!(report.fleet.completed, 8, "settled exactly once each");
    assert_eq!(report.unsettled, 0);
    b0.drain().expect("drain shard 0");
    b1.drain().expect("drain shard 1");
}

/// With every shard stalled-Down (pumps alive, probes unanswered) the shed
/// hint is derived from the probe cadence — the soonest instant capacity
/// can reappear — rather than the flat configured constant.
#[test]
fn stalled_fleet_sheds_with_a_probe_derived_retry_hint() {
    let plan = Arc::new(BackendFaultPlan::new());
    plan.stall(0);
    let mut b0 = ManagedBackend::start(backend_config(None), scratch_dir("hint-b0"));
    let links: Vec<Box<dyn BackendLink>> =
        vec![Box::new(FaultyLink::new(b0.link(), Arc::clone(&plan), 0))];
    let config = ClusterConfig {
        probe_interval: Duration::from_millis(400),
        // a deliberately huge flat fallback: any hint at or under the probe
        // interval proves it was derived, not configured
        retry_after_ms: 60_000,
        ..ClusterConfig::default()
    };
    let (cluster, _recovery) = Cluster::start(config, links).expect("no journal");
    let handle = cluster.connect();

    wait_for(
        || cluster.backend_states()[0] == BackendState::Down,
        "the stalled shard to trip the breaker",
    );
    handle.submit(quick_spec(1, 5), 0, None);
    match handle.recv_timeout(Duration::from_secs(10)) {
        Some(Response::Overloaded { retry_after_ms }) => {
            assert!(retry_after_ms >= 1);
            assert!(
                retry_after_ms <= 400,
                "hint {retry_after_ms}ms exceeds the probe cadence — the \
                 flat fallback leaked through"
            );
        }
        other => panic!("expected an overloaded shed, got {other:?}"),
    }
    let report = cluster.shutdown();
    assert_eq!(report.fleet.rejected, 1);
    plan.heal(0);
    b0.drain().expect("drain");
}

/// The router-restart half of exactly-once: jobs journaled but unsettled
/// when the router dies are re-admitted by the next incarnation from the
/// write-ahead journal, complete bit-identically through the restarted
/// backend, and the journal ends fully settled.
#[test]
fn router_restart_replays_journal_and_settles_drained_jobs_bit_identically() {
    let scratch = scratch_dir("journal");
    std::fs::create_dir_all(&scratch).expect("scratch dir");
    let journal_path = scratch.join("intents.ndjson");
    let hold = Arc::new(FaultPlan::new());
    hold.hold_workers(); // armed before the workers spawn: nothing settles
    let mut backend = ManagedBackend::start(
        backend_config(Some(Arc::clone(&hold))),
        scratch.join("drain"),
    );
    let config = ClusterConfig {
        journal: Some(journal_path.clone()),
        ..fast_probes()
    };
    let specs: Vec<JobSpec> = (1..=6).map(|j| quick_spec(j, 50 + j)).collect();

    // first incarnation: admit everything, settle nothing
    let first_unsettled = {
        let links: Vec<Box<dyn BackendLink>> = vec![backend.link()];
        let (cluster, _recovery) = Cluster::start(config.clone(), links).expect("fresh journal");
        let handle = cluster.connect();
        for spec in &specs {
            handle.submit(spec.clone(), 0, None);
        }
        wait_for(|| cluster.stats().fleet.accepted == 6, "submits admitted");
        std::thread::sleep(Duration::from_millis(100)); // let forwards land
        cluster.shutdown().unsettled
    };
    assert_eq!(first_unsettled, 6, "nothing settled before the crash");
    backend.drain().expect("backend drains its share");

    // second incarnation: journal replay re-admits the jobs, owned by the
    // recovery handle; the restarted backend both resumes its drained copy
    // and receives the re-routed fresh copy — dedup keeps exactly one
    let link = backend.restart().expect("backend resumes");
    let (cluster, recovery) = Cluster::start(config, vec![link]).expect("journal replays");
    assert!(cluster.recovery_anomalies().is_empty(), "clean journal");
    let outcomes = collect_outcomes(&recovery, specs.len());
    assert_oracle(&outcomes, &specs);
    let report = cluster.shutdown();
    assert_eq!(report.fleet.accepted, 6, "recovered jobs re-admitted");
    assert_eq!(report.fleet.completed, 6, "each settled exactly once");
    assert_eq!(report.unsettled, 0);
    drop(recovery);
    backend.drain().expect("final drain");

    // a third open proves the journal closed the loop: every routed gid
    // has its settled record, nothing left to re-route
    let (_journal, replay) =
        saim_machine::cluster::journal::Journal::open(&journal_path).expect("reopen");
    assert!(replay.unsettled.is_empty(), "no orphaned intents");
    assert_eq!(replay.settled, 6);
    let _ = std::fs::remove_dir_all(&scratch);
}

/// Cancels route through the cluster: a job already forwarded to a shard
/// is cancelled there and settles exactly once as cancelled; an unknown id
/// earns the typed rejection.
#[test]
fn cancel_settles_exactly_once_through_the_cluster() {
    let hold = Arc::new(FaultPlan::new());
    hold.hold_workers(); // armed before the workers spawn
    let mut backend = ManagedBackend::start(
        backend_config(Some(Arc::clone(&hold))),
        scratch_dir("cancel"),
    );
    let links: Vec<Box<dyn BackendLink>> = vec![backend.link()];
    let (cluster, _recovery) = Cluster::start(fast_probes(), links).expect("no journal");
    let handle = cluster.connect();

    let spec = quick_spec(7, 77);
    handle.submit(spec.clone(), 0, None);
    wait_for(|| cluster.stats().fleet.accepted == 1, "submit admitted");
    std::thread::sleep(Duration::from_millis(50)); // let the forward land
                                                   // workers stay held: the hub cancels the still-queued job directly, so
                                                   // the terminal frame must be Cancelled, never Completed
    handle.send(Request::Cancel { job: 7 });

    let mut cancelled = None;
    let deadline = Instant::now() + Duration::from_secs(60);
    while cancelled.is_none() {
        assert!(Instant::now() < deadline, "cancel never settled");
        match handle.recv_timeout(Duration::from_millis(200)) {
            Some(Response::Outcome { outcome }) => cancelled = Some(outcome),
            Some(Response::Accepted { .. }) | None => {}
            Some(other) => panic!("unexpected frame {other:?}"),
        }
    }
    let outcome = cancelled.expect("settled");
    assert_eq!(outcome.job, 7);
    assert_eq!(outcome.outcome_kind, OutcomeKind::Cancelled);

    // a second cancel of the now-settled job is the typed unknown-job error
    handle.send(Request::Cancel { job: 7 });
    match handle.recv_timeout(Duration::from_secs(10)) {
        Some(Response::Rejected { code, .. }) => assert_eq!(code, "unknown_job"),
        other => panic!("expected unknown_job, got {other:?}"),
    }
    let report = cluster.shutdown();
    assert_eq!(report.fleet.cancelled, 1);
    assert_eq!(report.unsettled, 0);
    backend.drain().expect("drain");
}

/// Runs a fixed sequential k = 1 workload against a journaling router and
/// returns the exact journal bytes it produced. Submitting each job only
/// after the previous one settles pins the record order.
fn journal_bytes_for_k1_sequence() -> Vec<u8> {
    let scratch = scratch_dir("journal-bytes");
    std::fs::create_dir_all(&scratch).expect("scratch dir");
    let journal_path = scratch.join("intents.ndjson");
    let mut backend = ManagedBackend::start(
        FrontendConfig {
            workers: 1, // fixed: the fixture must not vary with the thread matrix
            ..FrontendConfig::default()
        },
        scratch.join("shard"),
    );
    let config = ClusterConfig {
        journal: Some(journal_path.clone()),
        ..fast_probes()
    };
    let links: Vec<Box<dyn BackendLink>> = vec![backend.link()];
    let (cluster, _recovery) = Cluster::start(config, links).expect("fresh journal");
    let handle = cluster.connect();
    for job in 1..=3u64 {
        let spec = quick_spec(job, 60 + job);
        handle.submit(spec.clone(), 0, None);
        let outcomes = collect_outcomes(&handle, 1);
        assert_oracle(&outcomes, &[spec]);
    }
    let report = cluster.shutdown();
    assert_eq!(report.fleet.completed, 3);
    assert_eq!(report.unsettled, 0);
    backend.drain().expect("drain");
    let bytes = std::fs::read(&journal_path).expect("journal bytes");
    let _ = std::fs::remove_dir_all(&scratch);
    bytes
}

/// The replication upgrade's compatibility contract: under the default
/// `ReplicationPolicy` (k = 1) the router must behave — journal bytes
/// included — exactly as it did before hedging existed. The committed
/// fixture holds the journal an unreplicated router wrote for this same
/// workload; regenerate it with `SAIM_BLESS_JOURNAL=1` only for a
/// deliberate, reviewed format change.
#[test]
fn default_policy_journal_is_byte_identical_to_the_pre_hedging_fixture() {
    let fixture = concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/tests/fixtures/pr8_journal.ndjson"
    );
    let bytes = journal_bytes_for_k1_sequence();
    if std::env::var_os("SAIM_BLESS_JOURNAL").is_some() {
        std::fs::write(fixture, &bytes).expect("bless fixture");
        return;
    }
    let expected = std::fs::read(fixture).expect("committed pr8 journal fixture");
    assert_eq!(
        bytes,
        expected,
        "k = 1 journal bytes diverged from the pre-hedging fixture:\n--- got\n{}\n--- want\n{}",
        String::from_utf8_lossy(&bytes),
        String::from_utf8_lossy(&expected)
    );
}
