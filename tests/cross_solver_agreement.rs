//! Cross-solver agreement: every independent solver in the workspace must
//! agree on small instances where enumeration is the ground truth. The
//! multi-solver runs also go through the batched job service, with the
//! direct calls kept as the oracle — agreement must survive the scheduler.

use saim_core::dual;
use saim_core::{BinaryProblem, LinearConstraint};
use saim_exact::{bb, brute, dp};
use saim_heuristics::ga::{ChuBeasleyGa, GaConfig};
use saim_ising::QuboBuilder;
use saim_knapsack::generate;
use saim_machine::service::{solver_service, JobOutcome, JobSpec, ServiceConfig, SolverSpec};
use saim_machine::{
    BetaSchedule, Dynamics, EnsembleAnnealer, EnsembleConfig, IsingSolver, ParallelTempering,
    PtConfig, SimulatedAnnealing,
};

#[test]
fn bb_equals_brute_force_qkp_and_mkp() {
    for seed in 0..8 {
        let q = generate::qkp(13, 0.75, seed).expect("valid parameters");
        let qb = bb::solve_qkp(&q, bb::BbLimits::default());
        assert!(qb.proven_optimal);
        assert_eq!(qb.profit, brute::qkp(&q).profit, "qkp seed {seed}");

        let m = generate::mkp(13, 3, 0.5, seed).expect("valid parameters");
        let mb = bb::solve_mkp(&m, bb::BbLimits::default());
        assert!(mb.proven_optimal);
        assert_eq!(mb.profit, brute::mkp(&m).profit, "mkp seed {seed}");
    }
}

#[test]
fn dp_equals_bb_on_single_constraint() {
    for seed in 0..6 {
        let m = generate::mkp_with_max_weight(18, 1, 0.5, 100, seed).expect("valid parameters");
        let bnb = bb::solve_mkp(&m, bb::BbLimits::default());
        let dp_res = dp::knapsack(m.values(), m.weights(0), m.capacities()[0]);
        assert!(bnb.proven_optimal);
        assert_eq!(bnb.profit, dp_res.profit, "seed {seed}");
    }
}

#[test]
fn sa_and_pt_find_the_same_ground_state_on_small_models() {
    // a frustrated 10-spin model solved by brute force, SA, and PT —
    // directly (the oracle) and through the batched job service
    let mut b = QuboBuilder::new(10);
    for i in 0..10 {
        for j in (i + 1)..10 {
            let v = if (i * 7 + j * 3) % 4 == 0 { 1.0 } else { -0.6 };
            b.add_pair(i, j, v).expect("valid pair");
        }
        b.add_linear(i, if i % 2 == 0 { -0.4 } else { 0.3 })
            .expect("valid index");
    }
    let qubo = b.build();
    let model = qubo.to_ising();
    let brute_min = (0u64..1024)
        .map(|m| model.energy(&saim_ising::BinaryState::from_mask(m, 10).to_spins()))
        .fold(f64::INFINITY, f64::min);

    let mut sa = SimulatedAnnealing::new(BetaSchedule::linear(12.0), 600, 2);
    let sa_best = sa.solve(&model).best_energy;
    assert!(
        (sa_best - brute_min).abs() < 1e-9,
        "SA missed: {sa_best} vs {brute_min}"
    );

    let cfg = PtConfig {
        replicas: 8,
        sweeps: 400,
        ..PtConfig::default()
    };
    let mut pt = ParallelTempering::new(cfg, 2);
    let pt_direct = pt.solve(&model);
    assert!(
        (pt_direct.best_energy - brute_min).abs() < 1e-9,
        "PT missed: {} vs {brute_min}",
        pt_direct.best_energy
    );

    // the same multi-solver agreement through the service: an ensemble of
    // SA runs, the PT solve above, and greedy descent submitted as jobs
    let ens_cfg = EnsembleConfig {
        replicas: 4,
        threads: 1,
        batch_width: 0,
        schedule: BetaSchedule::linear(12.0),
        mcs_per_run: 600,
        dynamics: Dynamics::Gibbs,
    };
    let specs = vec![
        JobSpec::new(0, qubo.clone(), SolverSpec::Ensemble(ens_cfg), 2),
        JobSpec::new(1, qubo.clone(), SolverSpec::Pt(cfg), 2),
        JobSpec::new(2, qubo.clone(), SolverSpec::Descent { max_sweeps: 500 }, 3),
    ];
    let mut service = solver_service(ServiceConfig {
        workers: 2,
        queue_depth: 2,
    });
    for spec in &specs {
        service.submit(spec.clone());
    }
    let outcomes: Vec<JobOutcome> = service
        .drain()
        .into_iter()
        .map(|r| r.expect("no solver job panicked"))
        .collect();

    // bit-exact against the direct oracle calls...
    let ens_direct = EnsembleAnnealer::new(ens_cfg, 2).solve(&model);
    assert_eq!(
        outcomes[0].canonical(),
        JobOutcome::new(&specs[0], &ens_direct, std::time::Duration::ZERO).canonical()
    );
    assert_eq!(
        outcomes[1].canonical(),
        JobOutcome::new(&specs[1], &pt_direct, std::time::Duration::ZERO).canonical()
    );
    // ...and still in agreement on the ground state (descent is a local
    // heuristic, so it only bounds from above)
    assert!((outcomes[0].best_energy - brute_min).abs() < 1e-9);
    assert!((outcomes[1].best_energy - brute_min).abs() < 1e-9);
    assert!(outcomes[2].best_energy >= brute_min - 1e-9);
    assert_eq!(outcomes[2].job, 2);
}

#[test]
fn ga_never_exceeds_certified_optimum() {
    for seed in 0..4 {
        let m = generate::mkp(12, 2, 0.5, seed).expect("valid parameters");
        let exact = brute::mkp(&m);
        let ga = ChuBeasleyGa::new(
            GaConfig {
                population: 30,
                generations: 800,
                ..GaConfig::default()
            },
            seed,
        )
        .run(&m);
        assert!(ga.profit <= exact.profit, "seed {seed}");
    }
}

#[test]
fn exact_dual_never_exceeds_opt_and_penalty_bound_never_exceeds_dual() {
    // weak duality chain on a toy problem, LB_P(λ=0) <= MD <= OPT
    let mut f = QuboBuilder::new(5);
    for (i, v) in [5.0, 4.0, 3.0, 2.0, 1.0].into_iter().enumerate() {
        f.add_linear(i, -v).expect("valid index");
    }
    let p = BinaryProblem::new(
        f.build(),
        vec![LinearConstraint::new(vec![1.0; 5], -2.0).expect("finite")],
    )
    .expect("dims agree");
    let (_, opt) = dual::exact_opt(&p).expect("feasible states exist");
    let penalty = 0.3;
    let (_, lb_p) = dual::exact_penalty_bound(&p, penalty);
    let (_, md) = dual::exact_dual_ascent(&p, penalty, 0.05, 300);
    assert!(lb_p <= md + 1e-9, "λ = 0 is in the dual feasible set");
    assert!(md <= opt + 1e-9, "weak duality");
    // and with this small penalty the chain is strict at the bottom
    assert!(lb_p < opt);
}
