//! Determinism guarantees across the whole stack: identical seeds must give
//! bit-identical experiments (the property every table in EXPERIMENTS.md
//! relies on), and different seeds must actually diversify.

use saim_core::{ConstrainedProblem, SaimConfig, SaimRunner};
use saim_heuristics::ga::{ChuBeasleyGa, GaConfig};
use saim_knapsack::{generate, io};
use saim_machine::{
    derive_seed, BetaSchedule, Dynamics, EnsembleAnnealer, EnsembleConfig, IsingSolver,
    ParallelTempering, PtConfig, SimulatedAnnealing,
};

#[test]
fn generators_replay_and_diverge() {
    assert_eq!(
        generate::qkp(40, 0.5, 7).expect("valid"),
        generate::qkp(40, 0.5, 7).expect("valid")
    );
    assert_ne!(
        generate::qkp(40, 0.5, 7).expect("valid"),
        generate::qkp(40, 0.5, 8).expect("valid")
    );
    assert_eq!(
        generate::mkp(30, 4, 0.25, 3).expect("valid"),
        generate::mkp(30, 4, 0.25, 3).expect("valid")
    );
}

#[test]
fn saim_outcome_is_bit_identical_under_fixed_seed() {
    let inst = generate::qkp(30, 0.5, 12).expect("valid");
    let enc = inst.encode().expect("encodes");
    let run = |seed: u64| {
        let config = SaimConfig {
            penalty: enc.penalty_for_alpha(2.0),
            eta: 20.0,
            iterations: 40,
            seed,
        };
        let solver = SimulatedAnnealing::new(BetaSchedule::linear(10.0), 300, seed);
        SaimRunner::new(config).run(&enc, solver)
    };
    let a = run(5);
    let b = run(5);
    assert_eq!(a, b);
    // serialized forms are identical too (what EXPERIMENTS.md records)
    assert_eq!(
        serde_json::to_string(&a).expect("serializes"),
        serde_json::to_string(&b).expect("serializes")
    );
    let c = run(6);
    assert_ne!(a.records, c.records, "different seeds must differ");
}

#[test]
fn pt_outcome_is_invariant_in_thread_count() {
    // the round-parallel PT engine must produce bit-identical outcomes for
    // 1, 2 and 8 worker threads (and auto-sizing)
    let inst = generate::qkp(25, 0.5, 14).expect("valid");
    let enc = inst.encode().expect("encodes");
    let model = saim_core::penalty_qubo(&enc, enc.penalty_for_alpha(40.0))
        .expect("valid penalty")
        .to_ising();
    let config = |threads: usize| PtConfig {
        replicas: 6,
        sweeps: 130,
        swap_interval: 10,
        threads,
        ..PtConfig::default()
    };
    let serial = ParallelTempering::new(config(1), 77).solve(&model);
    for threads in [2, 8, 0] {
        let parallel = ParallelTempering::new(config(threads), 77).solve(&model);
        assert_eq!(parallel, serial, "threads = {threads}");
    }
}

#[test]
fn pt_parallel_engine_matches_serial_reference_replay() {
    // a from-scratch serial replay of the documented RNG-stream layout and
    // swap schedule — ladder slot k on stream derive(derive(seed, batch), k),
    // the swap phase on stream index R, even pairs on even rounds, no
    // exchange after the final round — must reproduce the engine's parallel
    // outcome exactly, with no engine machinery at all (the PT analogue of
    // the ensemble replica replay)
    use rand::Rng;
    use saim_machine::{new_rng, PbitMachine};

    let inst = generate::qkp(20, 0.5, 5).expect("valid");
    let enc = inst.encode().expect("encodes");
    let model = saim_core::penalty_qubo(&enc, enc.penalty_for_alpha(40.0))
        .expect("valid penalty")
        .to_ising();
    let cfg = PtConfig {
        replicas: 5,
        sweeps: 97, // deliberately not a multiple of the swap interval
        swap_interval: 10,
        threads: 8,
        ..PtConfig::default()
    };
    let seed = 123u64;
    let engine = ParallelTempering::new(cfg, seed).solve(&model);

    let ladder = cfg.ladder();
    let r = cfg.replicas;
    let batch_seed = derive_seed(seed, 0);
    let mut machines = Vec::new();
    let mut rngs = Vec::new();
    let mut bests: Vec<(f64, saim_ising::SpinState)> = Vec::new();
    for k in 0..r {
        let mut rng = new_rng(derive_seed(batch_seed, k as u64));
        let machine = PbitMachine::new(&model, &mut rng);
        bests.push((machine.energy(), machine.state().clone()));
        machines.push(machine);
        rngs.push(rng);
    }
    let mut swap_rng = new_rng(derive_seed(batch_seed, r as u64));

    let mut done = 0;
    let mut round = 0usize;
    while done < cfg.sweeps {
        let len = cfg.swap_interval.min(cfg.sweeps - done);
        for k in 0..r {
            for _ in 0..len {
                machines[k].sweep(&model, ladder[k], &mut rngs[k]);
                if machines[k].energy() < bests[k].0 {
                    bests[k] = (machines[k].energy(), machines[k].state().clone());
                }
            }
        }
        done += len;
        if done == cfg.sweeps {
            break; // no exchange follows the final round
        }
        let mut k = round % 2;
        while k + 1 < r {
            let accept_ln =
                (ladder[k] - ladder[k + 1]) * (machines[k].energy() - machines[k + 1].energy());
            if accept_ln >= 0.0 || swap_rng.gen::<f64>() < accept_ln.exp() {
                machines.swap(k, k + 1);
            }
            k += 2;
        }
        round += 1;
    }

    let (mut best_energy, mut best_state) = (f64::INFINITY, None);
    for (e, s) in &bests {
        if *e < best_energy {
            best_energy = *e;
            best_state = Some(s.clone());
        }
    }
    assert_eq!(engine.best_energy, best_energy);
    assert_eq!(engine.best, best_state.expect("at least one slot"));
    assert_eq!(engine.last, machines[r - 1].state().clone());
    assert_eq!(engine.last_energy, machines[r - 1].energy());
    assert_eq!(engine.mcs, (cfg.sweeps * r) as u64);
}

#[test]
fn pt_and_ga_replay_under_fixed_seed() {
    let inst = generate::qkp(20, 0.5, 3).expect("valid");
    let enc = inst.encode().expect("encodes");
    let model = saim_core::penalty_qubo(&enc, enc.penalty_for_alpha(40.0))
        .expect("valid penalty")
        .to_ising();
    let cfg = PtConfig {
        replicas: 6,
        sweeps: 120,
        ..PtConfig::default()
    };
    let a = ParallelTempering::new(cfg, 9).solve(&model);
    let b = ParallelTempering::new(cfg, 9).solve(&model);
    assert_eq!(a, b);

    let mkp = generate::mkp(20, 3, 0.5, 4).expect("valid");
    let ga_cfg = GaConfig {
        population: 20,
        generations: 300,
        ..GaConfig::default()
    };
    assert_eq!(
        ChuBeasleyGa::new(ga_cfg, 1).run(&mkp),
        ChuBeasleyGa::new(ga_cfg, 1).run(&mkp)
    );
}

#[test]
fn ensemble_outcome_is_invariant_in_thread_count() {
    // the replica-ensemble engine must produce bit-identical outcomes for
    // 1, 2 and N rayon-style worker threads, and each replica must replay a
    // serial reference run of its derived stream
    let inst = generate::qkp(25, 0.5, 21).expect("valid");
    let enc = inst.encode().expect("encodes");
    let model = saim_core::penalty_qubo(&enc, enc.penalty_for_alpha(2.0))
        .expect("valid penalty")
        .to_ising();
    let config = |threads: usize| EnsembleConfig {
        replicas: 6,
        threads,
        batch_width: 0,
        schedule: BetaSchedule::linear(10.0),
        mcs_per_run: 150,
        dynamics: Dynamics::Gibbs,
    };
    let serial = EnsembleAnnealer::new(config(1), 77).solve_ensemble(&model);
    for threads in [2, 4, 0] {
        let parallel = EnsembleAnnealer::new(config(threads), 77).solve_ensemble(&model);
        assert_eq!(parallel, serial, "threads = {threads}");
    }
    // serial reference: replica i is exactly one SimulatedAnnealing run of
    // the derived seed, executed with no ensemble machinery at all
    for r in &serial.replicas {
        let reference =
            SimulatedAnnealing::new(BetaSchedule::linear(10.0), 150, r.seed).solve(&model);
        assert_eq!(r.outcome, reference, "replica {}", r.replica);
    }
}

#[test]
fn ensemble_outcome_is_invariant_in_batch_width() {
    // the batched SoA sweep engine must leave every replica's trajectory
    // untouched no matter how many lanes share a batch — R runs grouped
    // 1-wide, 3-wide, 8-wide or 16-wide read bit-identically
    let inst = generate::qkp(22, 0.5, 33).expect("valid");
    let enc = inst.encode().expect("encodes");
    let model = saim_core::penalty_qubo(&enc, enc.penalty_for_alpha(2.0))
        .expect("valid penalty")
        .to_ising();
    let config = |batch_width: usize| EnsembleConfig {
        replicas: 6,
        threads: 1,
        batch_width,
        schedule: BetaSchedule::linear(8.0),
        mcs_per_run: 120,
        dynamics: Dynamics::Gibbs,
    };
    let reference = EnsembleAnnealer::new(config(1), 55).solve_ensemble(&model);
    for batch_width in [2, 3, 8, 16, 0] {
        let got = EnsembleAnnealer::new(config(batch_width), 55).solve_ensemble(&model);
        assert_eq!(got, reference, "batch_width = {batch_width}");
    }
    // and the width-1 path is still the serial SimulatedAnnealing replay
    for r in &reference.replicas {
        let serial = SimulatedAnnealing::new(BetaSchedule::linear(8.0), 120, r.seed).solve(&model);
        assert_eq!(r.outcome, serial, "replica {}", r.replica);
    }
}

#[test]
fn hot_regime_engines_are_invariant_in_thread_count_and_width() {
    // β ∈ {2, 4, 8}: the hot regime the bracket decision kernel
    // accelerates — exactly what the deep-quench schedules above never
    // exercise. Constant-β ensembles at every batch width and thread
    // count, plus the serial SimulatedAnnealing replica replay, must stay
    // bit-identical.
    let inst = generate::qkp(24, 0.5, 61).expect("valid");
    let enc = inst.encode().expect("encodes");
    let model = saim_core::penalty_qubo(&enc, enc.penalty_for_alpha(2.0))
        .expect("valid penalty")
        .to_ising();
    for beta in [2.0, 4.0, 8.0] {
        let config = |threads: usize, batch_width: usize| EnsembleConfig {
            replicas: 5,
            threads,
            batch_width,
            schedule: BetaSchedule::constant(beta),
            mcs_per_run: 120,
            dynamics: Dynamics::Gibbs,
        };
        let reference = EnsembleAnnealer::new(config(1, 1), 19).solve_ensemble(&model);
        for (threads, batch_width) in [(2, 0), (8, 8), (0, 2), (1, 16)] {
            let got =
                EnsembleAnnealer::new(config(threads, batch_width), 19).solve_ensemble(&model);
            assert_eq!(
                got, reference,
                "beta = {beta}, threads = {threads}, width = {batch_width}"
            );
        }
        for r in &reference.replicas {
            let serial =
                SimulatedAnnealing::new(BetaSchedule::constant(beta), 120, r.seed).solve(&model);
            assert_eq!(r.outcome, serial, "beta = {beta}, replica {}", r.replica);
        }
    }
}

#[test]
fn hot_regime_pt_is_invariant_in_thread_count() {
    // a ladder capped at β = 8 keeps every slot in the hot regime for the
    // whole run — the bracket kernel decides nearly every update
    let inst = generate::qkp(22, 0.5, 62).expect("valid");
    let enc = inst.encode().expect("encodes");
    let model = saim_core::penalty_qubo(&enc, enc.penalty_for_alpha(2.0))
        .expect("valid penalty")
        .to_ising();
    let config = |threads: usize| PtConfig {
        replicas: 6,
        sweeps: 110,
        swap_interval: 10,
        beta_min: 0.5,
        beta_max: 8.0,
        threads,
    };
    let serial = ParallelTempering::new(config(1), 29).solve(&model);
    for threads in [2, 8, 0] {
        let parallel = ParallelTempering::new(config(threads), 29).solve(&model);
        assert_eq!(parallel, serial, "threads = {threads}");
    }
}

#[test]
fn engines_are_invariant_at_env_selected_thread_count() {
    // CI runs this test in a matrix over SAIM_DETERMINISM_THREADS=1/2/8;
    // whatever the leg, the engines must reproduce the single-thread result
    let threads: usize = std::env::var("SAIM_DETERMINISM_THREADS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(2);
    let inst = generate::qkp(20, 0.5, 41).expect("valid");
    let enc = inst.encode().expect("encodes");
    let model = saim_core::penalty_qubo(&enc, enc.penalty_for_alpha(2.0))
        .expect("valid penalty")
        .to_ising();

    let ens_config = |threads: usize| EnsembleConfig {
        replicas: 5,
        threads,
        batch_width: 0,
        schedule: BetaSchedule::linear(9.0),
        mcs_per_run: 80,
        dynamics: Dynamics::Gibbs,
    };
    assert_eq!(
        EnsembleAnnealer::new(ens_config(threads), 13).solve_ensemble(&model),
        EnsembleAnnealer::new(ens_config(1), 13).solve_ensemble(&model),
        "ensemble at {threads} threads"
    );

    let pt_config = |threads: usize| PtConfig {
        replicas: 10,
        sweeps: 90,
        swap_interval: 10,
        threads,
        ..PtConfig::default()
    };
    assert_eq!(
        ParallelTempering::new(pt_config(threads), 13).solve(&model),
        ParallelTempering::new(pt_config(1), 13).solve(&model),
        "PT at {threads} threads"
    );

    // hot-regime legs (β ≤ 8) in the same env-selected matrix: the bracket
    // decision kernel must stay thread-count-invariant where it actually
    // fires, not just on the deep-quench schedules above
    let hot_ens = |threads: usize| EnsembleConfig {
        replicas: 5,
        threads,
        batch_width: 0,
        schedule: BetaSchedule::constant(4.0),
        mcs_per_run: 80,
        dynamics: Dynamics::Gibbs,
    };
    assert_eq!(
        EnsembleAnnealer::new(hot_ens(threads), 17).solve_ensemble(&model),
        EnsembleAnnealer::new(hot_ens(1), 17).solve_ensemble(&model),
        "hot ensemble at {threads} threads"
    );
    let hot_pt = |threads: usize| PtConfig {
        replicas: 6,
        sweeps: 70,
        swap_interval: 10,
        beta_min: 0.5,
        beta_max: 8.0,
        threads,
    };
    assert_eq!(
        ParallelTempering::new(hot_pt(threads), 23).solve(&model),
        ParallelTempering::new(hot_pt(1), 23).solve(&model),
        "hot PT at {threads} threads"
    );

    // batch legs in the same env-selected matrix: the lane-major batched
    // sweep at widths 2 and 16 must reproduce the width-1 serial-shaped
    // replay at this thread count, on an anneal ramp and a hot hold alike
    for schedule in [BetaSchedule::linear(9.0), BetaSchedule::constant(4.0)] {
        let batch_ens = |threads: usize, batch_width: usize| EnsembleConfig {
            replicas: 5,
            threads,
            batch_width,
            schedule,
            mcs_per_run: 80,
            dynamics: Dynamics::Gibbs,
        };
        let reference = EnsembleAnnealer::new(batch_ens(1, 1), 37).solve_ensemble(&model);
        for batch_width in [2, 16] {
            assert_eq!(
                EnsembleAnnealer::new(batch_ens(threads, batch_width), 37).solve_ensemble(&model),
                reference,
                "batch width {batch_width} at {threads} threads, {schedule:?}"
            );
        }
    }
}

#[test]
fn saim_ensemble_path_is_invariant_in_thread_count() {
    // the full SAIM outer loop on the ensemble engine: root seed comes from
    // SaimConfig::seed, outcomes must not depend on worker threads
    let inst = generate::qkp(20, 0.5, 9).expect("valid");
    let enc = inst.encode().expect("encodes");
    let config = SaimConfig {
        penalty: enc.penalty_for_alpha(2.0),
        eta: 20.0,
        iterations: 15,
        seed: 31,
    };
    let run = |threads: usize| {
        let ensemble = EnsembleConfig {
            replicas: 4,
            threads,
            batch_width: 0,
            schedule: BetaSchedule::linear(10.0),
            mcs_per_run: 100,
            dynamics: Dynamics::Gibbs,
        };
        SaimRunner::new(config).run_ensemble(&enc, ensemble)
    };
    let serial = run(1);
    assert_eq!(run(2), serial);
    assert_eq!(run(0), serial);
    assert_eq!(serial.mcs_total, 15 * 4 * 100);
}

#[test]
fn seed_derivation_isolates_solver_streams() {
    // two experiment components seeded from the same master must not share
    // RNG streams
    let master = 42;
    let s1 = derive_seed(master, 1);
    let s2 = derive_seed(master, 2);
    assert_ne!(s1, s2);
    let inst = generate::qkp(15, 0.5, master).expect("valid");
    let enc = inst.encode().expect("encodes");
    let model = saim_core::penalty_qubo(&enc, 1.0)
        .expect("valid")
        .to_ising();
    let out1 = SimulatedAnnealing::new(BetaSchedule::linear(5.0), 50, s1).solve(&model);
    let out2 = SimulatedAnnealing::new(BetaSchedule::linear(5.0), 50, s2).solve(&model);
    assert_ne!(
        out1.last, out2.last,
        "derived streams should explore differently"
    );
}

#[test]
fn instance_io_roundtrips_preserve_experiment_inputs() {
    // tables regenerate from text instances exactly
    let q = generate::qkp(35, 0.25, 100).expect("valid");
    let q2 = io::read_qkp(&io::write_qkp(&q)).expect("parses");
    assert_eq!(q, q2);
    let enc1 = q.encode().expect("encodes");
    let enc2 = q2.encode().expect("encodes");
    assert_eq!(
        saim_core::ConstrainedProblem::objective(&enc1),
        saim_core::ConstrainedProblem::objective(&enc2)
    );
}
