//! End-to-end: generated MKP instances → encoding → SAIM → exact optimum,
//! plus the GA baseline — the paper's Table V pipeline at certifiable sizes.

use saim_core::{ConstrainedProblem, SaimConfig, SaimRunner};
use saim_exact::bb::{self, BbLimits};
use saim_heuristics::ga::{ChuBeasleyGa, GaConfig};
use saim_knapsack::generate;
use saim_machine::{derive_seed, BetaSchedule, SimulatedAnnealing};

fn run_saim(
    enc: &saim_knapsack::MkpEncoded,
    iterations: usize,
    seed: u64,
) -> saim_core::SaimOutcome {
    let config = SaimConfig {
        penalty: enc.penalty_for_alpha(5.0),
        eta: 0.05,
        iterations,
        seed,
    };
    let solver = SimulatedAnnealing::new(BetaSchedule::linear(50.0), 400, derive_seed(seed, 1));
    SaimRunner::new(config).run(enc, solver)
}

#[test]
fn saim_reaches_near_optimal_mkp_solutions() {
    let instance = generate::mkp_with_max_weight(16, 3, 0.5, 50, 5).expect("valid parameters");
    let enc = instance.encode().expect("encodes");
    let exact = bb::solve_mkp(&instance, BbLimits::default());
    assert!(exact.proven_optimal);

    let outcome = run_saim(&enc, 900, 5);
    let best = outcome.best.as_ref().expect("feasible sample appears");
    let profit = (-best.cost) as u64;
    assert!(profit <= exact.profit);
    assert!(
        profit as f64 >= 0.95 * exact.profit as f64,
        "SAIM {profit} too far below OPT {}",
        exact.profit
    );
}

#[test]
fn every_lambda_rises_during_the_overloaded_transient() {
    // Fig. 5b: all M multipliers climb while Ax > B. (Seed picked so the
    // first sample overloads every knapsack; the hot-path saturation
    // short-circuit changed RNG stream consumption, which moved which seeds
    // land in the cleanly-overloaded transient.)
    let instance = generate::mkp_with_max_weight(20, 4, 0.5, 50, 10).expect("valid parameters");
    let enc = instance.encode().expect("encodes");
    let outcome = run_saim(&enc, 200, 10);
    let first = &outcome.records[0];
    assert_eq!(first.lambda, vec![0.0; 4], "λ starts at zero");
    assert!(
        first.violations.iter().all(|&g| g > 0.0),
        "every knapsack should be overloaded initially: {:?}",
        first.violations
    );
    let later = &outcome.records[20];
    assert!(
        later.lambda.iter().all(|&l| l > 0.0),
        "all multipliers must have risen: {:?}",
        later.lambda
    );
}

#[test]
fn mkp_feasibility_is_lower_than_qkp_feasibility() {
    // the paper's section IV-B observation, reproduced as a relation rather
    // than an absolute number
    let qkp = generate::qkp(25, 0.5, 31).expect("valid parameters");
    let qkp_enc = qkp.encode().expect("encodes");
    let qkp_out = {
        let config = SaimConfig {
            penalty: qkp_enc.penalty_for_alpha(2.0),
            eta: 20.0,
            iterations: 250,
            seed: 31,
        };
        let solver = SimulatedAnnealing::new(BetaSchedule::linear(10.0), 400, 77);
        SaimRunner::new(config).run(&qkp_enc, solver)
    };

    let mkp = generate::mkp_with_max_weight(25, 5, 0.5, 50, 31).expect("valid parameters");
    let mkp_enc = mkp.encode().expect("encodes");
    let mkp_out = run_saim(&mkp_enc, 250, 31);

    assert!(
        qkp_out.feasibility > mkp_out.feasibility,
        "single-constraint QKP ({:.2}) should be easier to satisfy than 5-constraint MKP ({:.2})",
        qkp_out.feasibility,
        mkp_out.feasibility
    );
}

#[test]
fn ga_and_saim_land_in_the_same_quality_band() {
    let instance = generate::mkp_with_max_weight(18, 3, 0.5, 50, 13).expect("valid parameters");
    let enc = instance.encode().expect("encodes");
    let exact = bb::solve_mkp(&instance, BbLimits::default());
    assert!(exact.proven_optimal);

    let ga = ChuBeasleyGa::new(
        GaConfig {
            population: 40,
            generations: 3000,
            ..GaConfig::default()
        },
        13,
    )
    .run(&instance);
    let saim = run_saim(&enc, 900, 13);
    let saim_profit = saim.best.as_ref().map(|b| (-b.cost) as u64).unwrap_or(0);

    let band = 0.9 * exact.profit as f64;
    assert!(ga.profit as f64 >= band, "GA below the quality band");
    assert!(saim_profit as f64 >= band, "SAIM below the quality band");
}

#[test]
fn slack_bits_of_feasible_samples_decode_to_residual_capacity() {
    let instance = generate::mkp_with_max_weight(15, 2, 0.5, 30, 17).expect("valid parameters");
    let enc = instance.encode().expect("encodes");
    let outcome = run_saim(&enc, 400, 17);
    let best = outcome.best.as_ref().expect("feasible sample");
    let items = enc.decode(&best.state);
    assert!(instance.is_feasible(&items));
    // feasible SAIM samples also satisfy the *encoded* equalities closely
    // when re-extended with exact slack
    let exact_state = enc.extend_with_slack(&items);
    for c in enc.constraints() {
        assert!(c.violation(&exact_state).abs() < 1e-9);
    }
}
