//! End-to-end: generated QKP instances → encoding → SAIM → exact optimum.
//!
//! These tests run the full pipeline the paper's QKP evaluation uses, at
//! sizes where branch and bound certifies the optimum, and assert the
//! *behavioral* claims: SAIM finds (near-)optimal feasible solutions from a
//! deliberately sub-critical penalty, and its trace shows the
//! unfeasible-transient-then-convergence structure of Fig. 3.

use saim_core::{ConstrainedProblem, SaimConfig, SaimRunner};
use saim_exact::bb::{self, BbLimits};
use saim_knapsack::generate;
use saim_machine::{derive_seed, BetaSchedule, SimulatedAnnealing};

fn run_saim(
    enc: &saim_knapsack::QkpEncoded,
    iterations: usize,
    seed: u64,
) -> saim_core::SaimOutcome {
    let config = SaimConfig {
        penalty: enc.penalty_for_alpha(2.0),
        eta: 20.0,
        iterations,
        seed,
    };
    let solver = SimulatedAnnealing::new(BetaSchedule::linear(10.0), 400, derive_seed(seed, 1));
    SaimRunner::new(config).run(enc, solver)
}

#[test]
fn saim_matches_exact_optimum_on_certifiable_instances() {
    let mut optimal_hits = 0;
    let total = 5;
    for seed in 0..total {
        let instance = generate::qkp(18, 0.5, seed).expect("valid parameters");
        let enc = instance.encode().expect("encodes");
        let exact = bb::solve_qkp(&instance, BbLimits::default());
        assert!(exact.proven_optimal, "18-item QKP must certify");

        let outcome = run_saim(&enc, 120, seed);
        let best = outcome.best.as_ref().expect("SAIM finds a feasible sample");
        let profit = (-best.cost) as u64;
        assert!(
            profit <= exact.profit,
            "heuristic cannot beat a certified optimum"
        );
        assert!(
            profit as f64 >= 0.97 * exact.profit as f64,
            "seed {seed}: SAIM {} far below OPT {}",
            profit,
            exact.profit
        );
        if profit == exact.profit {
            optimal_hits += 1;
        }
    }
    assert!(
        optimal_hits >= 3,
        "SAIM should hit the exact optimum on most small instances, got {optimal_hits}/{total}"
    );
}

#[test]
fn saim_best_sample_is_verifiably_feasible() {
    let instance = generate::qkp(30, 0.25, 11).expect("valid parameters");
    let enc = instance.encode().expect("encodes");
    let outcome = run_saim(&enc, 100, 11);
    let best = outcome.best.as_ref().expect("feasible sample");
    let selection = enc.decode(&best.state);
    // the stored cost must equal the instance's own arithmetic
    assert_eq!(best.cost, instance.cost(&selection));
    assert!(instance.is_feasible(&selection));
    assert!(instance.weight(&selection) <= instance.capacity());
}

#[test]
fn trace_shows_unfeasible_transient_then_feasible_phase() {
    // the Fig. 3 structure: with P = 2dN < P_C and λ₀ = 0, early samples
    // overfill; after λ grows, feasible samples appear
    let instance = generate::qkp(40, 0.5, 3).expect("valid parameters");
    let enc = instance.encode().expect("encodes");
    let outcome = run_saim(&enc, 150, 3);

    let first = &outcome.records[0];
    assert!(
        !first.feasible,
        "iteration 0 should be unfeasible at small P"
    );
    assert!(
        first.violations[0] > 0.0,
        "initial sample should overfill the knapsack"
    );
    let first_feasible = outcome
        .records
        .iter()
        .position(|r| r.feasible)
        .expect("feasibility must eventually appear");
    assert!(first_feasible > 0);
    // λ must have grown from zero by then
    assert!(outcome.records[first_feasible].lambda[0] > 0.0);
    // late-phase feasibility should dominate early-phase feasibility
    let half = outcome.records.len() / 2;
    let early = outcome.records[..half]
        .iter()
        .filter(|r| r.feasible)
        .count();
    let late = outcome.records[half..]
        .iter()
        .filter(|r| r.feasible)
        .count();
    assert!(
        late > early,
        "feasibility should improve over the run: {early} -> {late}"
    );
}

#[test]
fn unfeasible_lower_bounds_undershoot_the_optimum() {
    // paper Fig. 3b: unfeasible samples have cost below OPT (they are lower
    // bounds of the relaxed landscape)
    let instance = generate::qkp(16, 0.5, 7).expect("valid parameters");
    let enc = instance.encode().expect("encodes");
    let exact = bb::solve_qkp(&instance, BbLimits::default());
    assert!(exact.proven_optimal);
    let outcome = run_saim(&enc, 60, 7);
    let early_unfeasible: Vec<f64> = outcome
        .records
        .iter()
        .take(5)
        .filter(|r| !r.feasible)
        .map(|r| r.cost)
        .collect();
    assert!(
        early_unfeasible.iter().any(|&c| c < -(exact.profit as f64)),
        "some early unfeasible sample should undercut OPT, got {early_unfeasible:?}"
    );
}

#[test]
fn deterministic_replay_end_to_end() {
    let instance = generate::qkp(25, 0.5, 21).expect("valid parameters");
    let enc = instance.encode().expect("encodes");
    let a = run_saim(&enc, 50, 21);
    let b = run_saim(&enc, 50, 21);
    assert_eq!(a, b, "full pipeline must replay bit-identically");
}
