//! Loopback-TCP integration tests of the fault-tolerant network front-end:
//! real sockets speaking the NDJSON protocol against a live worker fleet,
//! with every degradation scripted through `frontend::faults` or produced
//! with raw socket writes (truncated, interleaved, oversized, and
//! slow-loris frames).
//!
//! The headline invariant is **no lost jobs**: every job a server accepts
//! produces exactly one terminal frame — outcome, failure — or survives a
//! drain and completes bit-identically after resume, under every fault in
//! the harness. CI runs this suite in the same 1/2/8-thread matrix as
//! `tests/determinism.rs` (`SAIM_DETERMINISM_THREADS`).

use std::collections::HashMap;
use std::io::Write;
use std::net::{TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::Arc;
use std::time::Duration;

use saim_ising::QuboBuilder;
use saim_machine::frontend::{
    faults::FaultPlan, Backoff, Frontend, FrontendConfig, NdjsonClient, Request, Response,
};
use saim_machine::service::{JobOutcome, JobSpec, SolverSpec};
use saim_machine::{EnsembleConfig, OutcomeKind};

fn env_workers() -> usize {
    std::env::var("SAIM_DETERMINISM_THREADS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(2)
}

/// A fast deterministic job.
fn quick_spec(job: u64, seed: u64) -> JobSpec {
    let mut b = QuboBuilder::new(5);
    for i in 0..5 {
        b.add_linear(i, -1.0).expect("index in range");
    }
    b.add_pair(0, 1, 0.5).expect("indices in range");
    JobSpec::new(job, b.build(), SolverSpec::Descent { max_sweeps: 40 }, seed)
        .with_instance_digest(job ^ 0xBEEF)
}

/// A job slow enough to be caught mid-run by cancels and drains.
fn slow_spec(job: u64, seed: u64) -> JobSpec {
    let mut b = QuboBuilder::new(6);
    for i in 0..6 {
        b.add_linear(i, -1.0).expect("index in range");
    }
    JobSpec::new(
        job,
        b.build(),
        SolverSpec::Ensemble(EnsembleConfig {
            replicas: 2,
            threads: 1,
            mcs_per_run: 4000,
            ..EnsembleConfig::default()
        }),
        seed,
    )
}

/// Boots a fleet on an OS-assigned loopback port; returns the frontend and
/// the address clients dial.
fn serve(config: FrontendConfig) -> (Frontend, String) {
    let frontend = Frontend::start(config);
    let listener = TcpListener::bind("127.0.0.1:0").expect("loopback bind");
    let addr = listener.local_addr().expect("bound").to_string();
    frontend.serve(listener);
    (frontend, addr)
}

fn test_config(workers: usize, faults: Option<Arc<FaultPlan>>) -> FrontendConfig {
    FrontendConfig {
        workers,
        faults,
        ..FrontendConfig::default()
    }
}

/// A unique scratch directory under the system tmpdir.
fn scratch_dir(tag: &str) -> PathBuf {
    let path = std::env::temp_dir().join(format!("saim-net-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&path);
    path
}

#[test]
fn malformed_frames_earn_typed_rejections_and_the_session_survives() {
    let (frontend, addr) = serve(test_config(1, None));
    let mut client = NdjsonClient::connect(&addr).expect("connect");
    let expect_code = |client: &mut NdjsonClient, want: &str| match client.recv().expect("frame") {
        Response::Rejected { code, .. } => assert_eq!(code, want),
        other => panic!("expected a {want} rejection, got {other:?}"),
    };
    client.send_raw(b"{broken json\n").expect("write");
    expect_code(&mut client, "json");
    client
        .send_raw(b"{\"schema\":99,\"frame\":\"stats\"}\n")
        .expect("write");
    expect_code(&mut client, "version");
    client
        .send_raw(b"{\"schema\":3,\"frame\":\"warp\"}\n")
        .expect("write");
    expect_code(&mut client, "unknown_frame");
    client
        .send_raw(b"{\"schema\":3,\"frame\":\"stats\",\"x\":1}\n")
        .expect("write");
    expect_code(&mut client, "unknown_field");
    // four strikes and the session still schedules real work
    let spec = quick_spec(1, 3);
    client
        .send(&Request::Submit {
            spec: spec.clone(),
            priority: 0,
            deadline_ms: None,
        })
        .expect("write");
    assert!(matches!(
        client.recv().expect("frame"),
        Response::Accepted { job: 1 }
    ));
    match client.recv().expect("frame") {
        Response::Outcome { outcome } => {
            assert_eq!(outcome.canonical(), spec.run().canonical());
        }
        other => panic!("expected the outcome, got {other:?}"),
    }
    let fleet = frontend.fleet_stats();
    assert_eq!(fleet.completed, 1);
    assert_eq!(fleet.rejected, 0, "parse rejections are not admissions");
}

#[test]
fn oversized_frames_are_rejected_then_the_connection_is_dropped() {
    let mut config = test_config(1, None);
    config.max_frame_bytes = 1024;
    let (frontend, addr) = serve(config);
    let mut client = NdjsonClient::connect(&addr).expect("connect");
    let mut big = vec![b'a'; 4096];
    big.push(b'\n');
    client.send_raw(&big).expect("write");
    match client.recv().expect("the rejection frame arrives first") {
        Response::Rejected { code, .. } => assert_eq!(code, "oversized"),
        other => panic!("expected oversized rejection, got {other:?}"),
    }
    // the framing is untrusted after an overrun: server hangs up
    assert!(client.recv().is_err(), "connection should be closed");
    // and the listener still accepts fresh sessions
    let mut again = NdjsonClient::connect(&addr).expect("reconnect");
    again
        .send(&Request::Submit {
            spec: quick_spec(2, 1),
            priority: 0,
            deadline_ms: None,
        })
        .expect("write");
    assert!(matches!(
        again.recv().expect("frame"),
        Response::Accepted { job: 2 }
    ));
    drop(frontend);
}

#[test]
fn truncated_and_interleaved_partial_frames_are_handled() {
    let (frontend, addr) = serve(test_config(1, None));
    // a frame dribbled in over several writes parses once the newline lands
    let mut slow = NdjsonClient::connect(&addr).expect("connect");
    let spec = quick_spec(7, 9);
    let line = format!(
        "{}\n",
        Request::Submit {
            spec: spec.clone(),
            priority: 0,
            deadline_ms: None,
        }
        .to_line()
    );
    let bytes = line.as_bytes();
    for chunk in bytes.chunks(bytes.len() / 3 + 1) {
        slow.send_raw(chunk).expect("write");
        std::thread::sleep(Duration::from_millis(20));
    }
    assert!(matches!(
        slow.recv().expect("frame"),
        Response::Accepted { job: 7 }
    ));
    match slow.recv().expect("frame") {
        Response::Outcome { outcome } => {
            assert_eq!(outcome.canonical(), spec.run().canonical());
        }
        other => panic!("expected the outcome, got {other:?}"),
    }
    // a connection dying mid-frame must not wedge the server
    {
        let mut dying = TcpStream::connect(&addr).expect("connect");
        dying
            .write_all(b"{\"schema\":3,\"frame\":\"sub")
            .expect("write");
        // dropped here: EOF with half a frame buffered
    }
    std::thread::sleep(Duration::from_millis(50));
    let mut after = NdjsonClient::connect(&addr).expect("reconnect");
    after.send(&Request::Stats).expect("write");
    assert!(matches!(
        after.recv().expect("frame"),
        Response::Stats { .. }
    ));
    drop(frontend);
}

#[test]
fn slow_loris_writers_are_kicked_without_blocking_other_sessions() {
    let mut config = test_config(1, None);
    config.read_timeout = Duration::from_millis(150);
    let (frontend, addr) = serve(config);
    let mut loris = TcpStream::connect(&addr).expect("connect");
    loris.write_all(b"{\"schema\":3,").expect("write");
    // while the loris stalls mid-frame, an honest session does real work
    let mut honest = NdjsonClient::connect(&addr).expect("connect");
    honest
        .send(&Request::Submit {
            spec: quick_spec(1, 1),
            priority: 0,
            deadline_ms: None,
        })
        .expect("write");
    assert!(matches!(
        honest.recv().expect("frame"),
        Response::Accepted { job: 1 }
    ));
    assert!(matches!(
        honest.recv().expect("frame"),
        Response::Outcome { .. }
    ));
    // the stalled writer is disconnected once the read timeout fires
    std::thread::sleep(Duration::from_millis(400));
    loris
        .set_read_timeout(Some(Duration::from_millis(500)))
        .expect("timeout");
    let mut buf = [0u8; 16];
    let kicked = matches!(std::io::Read::read(&mut loris, &mut buf), Ok(0) | Err(_));
    assert!(kicked, "half-frame writer should have been disconnected");
    drop(frontend);
}

#[test]
fn overload_is_shed_with_retry_hints_and_backoff_recovers() {
    let plan = Arc::new(FaultPlan::new());
    plan.hold_workers();
    let mut config = test_config(1, Some(Arc::clone(&plan)));
    config.max_queued_per_client = 2;
    let (frontend, addr) = serve(config);
    let mut client = NdjsonClient::connect(&addr).expect("connect");
    for job in 0..2u64 {
        client
            .send(&Request::Submit {
                spec: quick_spec(job, job),
                priority: 0,
                deadline_ms: None,
            })
            .expect("write");
        assert!(matches!(
            client.recv().expect("frame"),
            Response::Accepted { .. }
        ));
    }
    // the budget is full: a plain submit is shed with a typed hint
    client
        .send(&Request::Submit {
            spec: quick_spec(9, 9),
            priority: 0,
            deadline_ms: None,
        })
        .expect("write");
    match client.recv().expect("frame") {
        Response::Overloaded { retry_after_ms } => assert!(retry_after_ms > 0),
        other => panic!("expected overload shed, got {other:?}"),
    }
    // free the fleet on a timer, as a real recovery would
    let unblock = std::thread::spawn({
        let plan = Arc::clone(&plan);
        move || {
            std::thread::sleep(Duration::from_millis(60));
            plan.release_workers();
        }
    });
    // the deterministic backoff client retries its way in; the two queued
    // outcomes arrive first on the ordered stream
    let mut backoff = Backoff::new(7, 5, 200);
    let response = client
        .submit_retrying(&quick_spec(9, 9), 0, None, &mut backoff, 32)
        .expect("socket");
    let mut seen = vec![];
    let mut current = response;
    loop {
        match current {
            Response::Accepted { job: 9 } => break,
            Response::Outcome { ref outcome } => seen.push(outcome.job),
            other => panic!("unexpected frame while retrying: {other:?}"),
        }
        current = client.recv().expect("frame");
    }
    // collect the remaining outcomes: all three jobs settle exactly once
    while seen.len() < 3 {
        match client.recv().expect("frame") {
            Response::Outcome { outcome } => seen.push(outcome.job),
            other => panic!("expected outcomes, got {other:?}"),
        }
    }
    seen.sort_unstable();
    assert_eq!(seen, vec![0, 1, 9]);
    unblock.join().expect("timer thread");
    let fleet = frontend.fleet_stats();
    assert_eq!(fleet.accepted, 3);
    assert_eq!(fleet.completed, 3);
    assert!(fleet.rejected >= 1, "at least the first shed is counted");
}

#[test]
fn client_disconnect_cancels_queued_and_running_work() {
    let plan = Arc::new(FaultPlan::new());
    plan.hold_workers();
    let (frontend, addr) = serve(test_config(1, Some(Arc::clone(&plan))));
    let mut doomed = NdjsonClient::connect(&addr).expect("connect");
    let mut survivor = NdjsonClient::connect(&addr).expect("connect");
    for job in 0..3u64 {
        doomed
            .send(&Request::Submit {
                spec: slow_spec(job, job),
                priority: 0,
                deadline_ms: None,
            })
            .expect("write");
        assert!(matches!(
            doomed.recv().expect("frame"),
            Response::Accepted { .. }
        ));
    }
    survivor
        .send(&Request::Submit {
            spec: quick_spec(10, 1),
            priority: 0,
            deadline_ms: None,
        })
        .expect("write");
    assert!(matches!(
        survivor.recv().expect("frame"),
        Response::Accepted { job: 10 }
    ));
    drop(doomed);
    // Let the reader thread register the EOF before any worker wakes: the
    // dead client's jobs are all still queued, so cleanup cancels them on
    // the spot. Releasing first is a race — the lone worker can run a
    // doomed job to completion before the disconnect is even noticed.
    let deadline = std::time::Instant::now() + Duration::from_secs(10);
    while frontend.fleet_stats().cancelled < 3 {
        assert!(
            std::time::Instant::now() < deadline,
            "disconnect cleanup never cancelled the dead client's queue: {:?}",
            frontend.fleet_stats()
        );
        std::thread::sleep(Duration::from_millis(2));
    }
    plan.release_workers();
    match survivor.recv().expect("frame") {
        Response::Outcome { outcome } => assert_eq!(outcome.job, 10),
        other => panic!("expected the survivor's outcome, got {other:?}"),
    }
    // the dead client's work was cancelled, not leaked
    let deadline = std::time::Instant::now() + Duration::from_secs(10);
    loop {
        let fleet = frontend.fleet_stats();
        if fleet.cancelled == 3 && fleet.accepted == fleet.settled() {
            break;
        }
        assert!(
            std::time::Instant::now() < deadline,
            "disconnect cleanup never settled: {fleet:?}"
        );
        std::thread::sleep(Duration::from_millis(10));
    }
}

#[test]
fn injected_worker_panics_surface_as_failures_and_the_fleet_survives() {
    let plan = Arc::new(FaultPlan::new());
    plan.panic_on_job(13);
    let (frontend, addr) = serve(test_config(1, Some(plan)));
    let mut client = NdjsonClient::connect(&addr).expect("connect");
    client
        .send(&Request::Submit {
            spec: quick_spec(13, 1).with_instance_digest(0xD16),
            priority: 0,
            deadline_ms: None,
        })
        .expect("write");
    assert!(matches!(
        client.recv().expect("frame"),
        Response::Accepted { job: 13 }
    ));
    match client.recv().expect("frame") {
        Response::Failure {
            job,
            instance_digest,
            message,
        } => {
            assert_eq!(job, 13);
            assert_eq!(instance_digest, 0xD16);
            assert!(message.contains("injected worker panic"));
        }
        other => panic!("expected a failure frame, got {other:?}"),
    }
    // the worker that caught the panic keeps serving
    let spec = quick_spec(14, 2);
    client
        .send(&Request::Submit {
            spec: spec.clone(),
            priority: 0,
            deadline_ms: None,
        })
        .expect("write");
    assert!(matches!(
        client.recv().expect("frame"),
        Response::Accepted { job: 14 }
    ));
    match client.recv().expect("frame") {
        Response::Outcome { outcome } => {
            assert_eq!(outcome.canonical(), spec.run().canonical());
        }
        other => panic!("expected the outcome, got {other:?}"),
    }
    let fleet = frontend.fleet_stats();
    assert_eq!((fleet.failed, fleet.completed), (1, 1));
}

#[test]
fn skewed_clocks_expire_queued_deadlines_without_burning_workers() {
    let plan = Arc::new(FaultPlan::new());
    plan.hold_workers();
    let (frontend, addr) = serve(test_config(1, Some(Arc::clone(&plan))));
    let mut client = NdjsonClient::connect(&addr).expect("connect");
    client
        .send(&Request::Submit {
            spec: quick_spec(21, 1),
            priority: 0,
            deadline_ms: Some(5_000),
        })
        .expect("write");
    assert!(matches!(
        client.recv().expect("frame"),
        Response::Accepted { job: 21 }
    ));
    plan.set_skew_ms(120_000);
    plan.release_workers();
    match client.recv().expect("frame") {
        Response::Outcome { outcome } => {
            assert_eq!(outcome.job, 21);
            assert_eq!(outcome.outcome_kind, OutcomeKind::DeadlineExceeded);
            assert_eq!(outcome.mcs, 0, "expired at dequeue, no engine spin-up");
        }
        other => panic!("expected a deadline outcome, got {other:?}"),
    }
    assert_eq!(frontend.fleet_stats().expired, 1);
}

/// The no-lost-jobs invariant under a composite fault script: panics and
/// clock skew while three clients race — every accepted job settles in
/// exactly one terminal frame, at every matrix worker count.
#[test]
fn every_accepted_job_settles_exactly_once_under_faults() {
    let plan = Arc::new(FaultPlan::new());
    plan.hold_workers();
    // panic scripts target deadline-free jobs: a job whose deadline has
    // already expired is shed at dequeue and never reaches the worker body
    plan.panic_on_job(101);
    plan.panic_on_job(204);
    let (frontend, addr) = serve(test_config(env_workers(), Some(Arc::clone(&plan))));
    let mut clients: Vec<NdjsonClient> = (0..3)
        .map(|_| NdjsonClient::connect(&addr).expect("connect"))
        .collect();
    let mut accepted: Vec<Vec<u64>> = vec![vec![]; 3];
    for (c, client) in clients.iter_mut().enumerate() {
        for k in 0..6u64 {
            let job = (c as u64 + 1) * 100 + k;
            // a couple of jobs per client carry deadlines the skew will blow
            let deadline = if k % 3 == 2 { Some(10_000) } else { None };
            client
                .send(&Request::Submit {
                    spec: quick_spec(job, job),
                    priority: (k % 2) as u8,
                    deadline_ms: deadline,
                })
                .expect("write");
            match client.recv().expect("frame") {
                Response::Accepted { job: got } => {
                    assert_eq!(got, job);
                    accepted[c].push(job);
                }
                other => panic!("expected acceptance, got {other:?}"),
            }
        }
    }
    plan.set_skew_ms(60_000);
    plan.release_workers();
    let mut terminal: HashMap<u64, &'static str> = HashMap::new();
    for (c, client) in clients.iter_mut().enumerate() {
        for _ in 0..accepted[c].len() {
            let (job, kind) = match client.recv().expect("terminal frame") {
                Response::Outcome { outcome } => (
                    outcome.job,
                    match outcome.outcome_kind {
                        OutcomeKind::Completed => "completed",
                        OutcomeKind::DeadlineExceeded => "expired",
                        other => panic!("unexpected terminal kind {other:?}"),
                    },
                ),
                Response::Failure { job, .. } => (job, "failed"),
                other => panic!("expected a terminal frame, got {other:?}"),
            };
            assert!(
                terminal.insert(job, kind).is_none(),
                "job {job} settled twice"
            );
        }
    }
    let all_accepted: Vec<u64> = accepted.concat();
    assert_eq!(terminal.len(), all_accepted.len());
    for job in &all_accepted {
        assert!(terminal.contains_key(job), "job {job} never settled");
    }
    assert_eq!(terminal[&101], "failed");
    assert_eq!(terminal[&204], "failed");
    let expired = terminal.values().filter(|k| **k == "expired").count();
    assert_eq!(expired, 6, "every deadline-carrying job expired under skew");
    let fleet = frontend.fleet_stats();
    assert_eq!(fleet.accepted, 18);
    assert_eq!(fleet.accepted, fleet.settled());
    assert_eq!(fleet.failed, 2);
    assert_eq!(fleet.expired, 6);
}

/// Drain mid-stream over TCP, resume at the matrix worker count, and
/// require the recovered outcomes to be bit-identical to never-interrupted
/// runs.
#[test]
fn drain_and_resume_over_tcp_replays_bit_identically() {
    let dir = scratch_dir("drain");
    let specs: Vec<JobSpec> = (0..5u64).map(|j| slow_spec(j, j + 40)).collect();
    let plan = Arc::new(FaultPlan::new());
    plan.hold_workers();
    let (frontend, addr) = serve(test_config(1, Some(Arc::clone(&plan))));
    let mut client = NdjsonClient::connect(&addr).expect("connect");
    for spec in &specs {
        client
            .send(&Request::Submit {
                spec: spec.clone(),
                priority: 0,
                deadline_ms: None,
            })
            .expect("write");
        assert!(matches!(
            client.recv().expect("frame"),
            Response::Accepted { .. }
        ));
    }
    plan.release_workers();
    while plan.dequeue_log().is_empty() {
        std::thread::yield_now();
    }
    let report = frontend.shutdown_to(&dir).expect("drain");
    // frames delivered before the drain still count toward coverage
    let mut outcomes: HashMap<u64, JobOutcome> = HashMap::new();
    client
        .set_read_timeout(Duration::from_millis(300))
        .expect("timeout");
    while let Ok(Response::Outcome { outcome }) = client.recv() {
        outcomes.insert(outcome.job, outcome);
    }
    assert_eq!(
        outcomes.len() + report.checkpointed + report.pending,
        specs.len(),
        "accepted work is finished, checkpointed, or persisted"
    );
    // restart at the matrix worker count and finish the drained jobs
    let (resumed, recovery) =
        Frontend::resume(test_config(env_workers(), None), &dir).expect("resume");
    while outcomes.len() < specs.len() {
        match recovery.recv_timeout(Duration::from_secs(60)) {
            Some(Response::Outcome { outcome }) => {
                outcomes.insert(outcome.job, outcome);
            }
            Some(Response::Accepted { .. }) => {}
            Some(other) => panic!("unexpected recovery frame: {other:?}"),
            None => panic!("recovery stream dried up early"),
        }
    }
    for spec in &specs {
        let outcome = outcomes.get(&spec.job).expect("job recovered");
        assert_eq!(outcome.outcome_kind, OutcomeKind::Completed);
        assert_eq!(
            outcome.canonical(),
            spec.run().canonical(),
            "job {} diverged after resume",
            spec.job
        );
    }
    drop(recovery);
    drop(resumed);
    let _ = std::fs::remove_dir_all(&dir);
}
