//! Cross-crate property tests: invariants that tie the encoding, the
//! Lagrangian system, the solvers, and the exact references together.

use proptest::prelude::*;
use saim_core::{dual, BinaryProblem, ConstrainedProblem, LagrangianSystem, LinearConstraint};
use saim_exact::brute;
use saim_ising::{BinaryState, QuboBuilder};
use saim_knapsack::generate;
use saim_machine::{BetaSchedule, IsingSolver, SimulatedAnnealing};

/// A small random constrained problem with a cardinality constraint.
fn arb_problem() -> impl Strategy<Value = BinaryProblem> {
    (3usize..7).prop_flat_map(|n| {
        (
            proptest::collection::vec(-5.0..5.0f64, n),
            proptest::collection::vec(((0..n), (0..n)), 0..5),
            1usize..3,
        )
            .prop_map(move |(linear, pairs, k)| {
                let mut b = QuboBuilder::new(n);
                for (i, v) in linear.into_iter().enumerate() {
                    b.add_linear(i, v).expect("index in range");
                }
                for (i, j) in pairs {
                    if i != j {
                        b.add_pair(i, j, 1.0).expect("indices in range");
                    }
                }
                BinaryProblem::new(
                    b.build(),
                    vec![LinearConstraint::new(vec![1.0; n], -(k as f64)).expect("finite")],
                )
                .expect("dims agree")
            })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Weak duality: for any λ and any penalty, the exact Lagrangian bound
    /// never exceeds the constrained optimum.
    #[test]
    fn lagrangian_bound_respects_weak_duality(
        problem in arb_problem(),
        penalty in 0.0..3.0f64,
        lambda in -5.0..5.0f64,
    ) {
        if let Some((_, opt)) = dual::exact_opt(&problem) {
            let (_, lb) = dual::exact_lagrangian_bound(&problem, penalty, &[lambda]);
            prop_assert!(lb <= opt + 1e-9, "LB_L = {lb} > OPT = {opt}");
        }
    }

    /// The Lagrangian energy decomposes exactly as f + P‖g‖² + λᵀg for every
    /// state, penalty, and multiplier.
    #[test]
    fn lagrangian_energy_decomposition(
        problem in arb_problem(),
        penalty in 0.0..3.0f64,
        lambda in -5.0..5.0f64,
        mask in 0u64..128,
    ) {
        let n = problem.num_vars();
        let x = BinaryState::from_mask(mask % (1 << n), n);
        let mut sys = LagrangianSystem::new(&problem, penalty).expect("valid penalty");
        sys.set_lambda(&[lambda]).expect("one constraint");
        let g = problem.constraints()[0].violation(&x);
        let f = ConstrainedProblem::objective(&problem).energy(&x);
        let expected = f + penalty * g * g + lambda * g;
        let got = sys.lagrangian_energy(&x);
        prop_assert!((got - expected).abs() < 1e-9, "{got} vs {expected}");
    }

    /// SAIM's feasible samples are genuinely feasible and never beat the
    /// enumerated optimum (on QKP instances small enough to enumerate).
    #[test]
    fn saim_samples_are_sound_vs_brute_force(seed in 0u64..40) {
        let inst = generate::qkp(12, 0.5, seed).expect("valid parameters");
        let enc = inst.encode().expect("encodes");
        let exact = brute::qkp(&inst);
        let config = saim_core::SaimConfig {
            penalty: enc.penalty_for_alpha(2.0),
            eta: 20.0,
            iterations: 15,
            seed,
        };
        let solver = SimulatedAnnealing::new(BetaSchedule::linear(10.0), 150, seed);
        let outcome = saim_core::SaimRunner::new(config).run(&enc, solver);
        for r in &outcome.records {
            if r.feasible {
                prop_assert!((-r.cost) as u64 <= exact.profit);
            }
        }
        if let Some(best) = &outcome.best {
            let items = enc.decode(&best.state);
            prop_assert!(inst.is_feasible(&items));
        }
    }

    /// A single annealed run's best sample never has higher energy than its
    /// last sample, and both energies match the model exactly.
    #[test]
    fn solver_outcome_invariants(seed in 0u64..100, beta in 0.5..15.0f64) {
        let inst = generate::qkp(10, 0.5, seed).expect("valid parameters");
        let enc = inst.encode().expect("encodes");
        let model = saim_core::penalty_qubo(&enc, 1.0).expect("valid").to_ising();
        let mut sa = SimulatedAnnealing::new(BetaSchedule::linear(beta), 60, seed);
        let out = sa.solve(&model);
        prop_assert!(out.best_energy <= out.last_energy + 1e-9);
        prop_assert!((model.energy(&out.best) - out.best_energy).abs() < 1e-9);
        prop_assert!((model.energy(&out.last) - out.last_energy).abs() < 1e-9);
    }

    /// Subgradient steps move λ in the direction that penalizes the observed
    /// violation: after ascending on g(x̄) > 0, the Lagrangian energy of x̄
    /// strictly increases (and symmetrically for g < 0).
    #[test]
    fn ascent_penalizes_the_violating_state(
        problem in arb_problem(),
        mask in 0u64..128,
    ) {
        let n = problem.num_vars();
        let x = BinaryState::from_mask(mask % (1 << n), n);
        let g = problem.constraints()[0].violation(&x);
        prop_assume!(g.abs() > 1e-9);
        let mut sys = LagrangianSystem::new(&problem, 0.5).expect("valid penalty");
        let before = sys.lagrangian_energy(&x);
        sys.ascend(&[g], 0.7).expect("well-formed");
        let after = sys.lagrangian_energy(&x);
        prop_assert!(after > before, "L(x̄) must rise: {before} -> {after}");
    }
}
