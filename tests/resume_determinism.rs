//! Resume determinism: an engine interrupted at an arbitrary sweep (or
//! round) and resumed from its checkpoint must finish bit-identically to a
//! run that was never interrupted — the property that makes the job
//! service's graceful drain safe to use at all. Covers every engine, hot
//! (β ∈ {2, 8}) and deep-quench schedule legs, batch widths 1/4/8, the
//! CI-matrix-selected worker count (`SAIM_DETERMINISM_THREADS` = 1/2/8),
//! the on-disk checkpoint round trip at every width, and a fixture
//! checkpoint written by the old spin-major batch build restoring under
//! the lane-major layout.

use proptest::prelude::*;
use saim_core::ConstrainedProblem;
use saim_knapsack::generate;
use saim_machine::service::{JobSpec, SolverSpec};
use saim_machine::{
    BetaSchedule, Checkpoint, Dynamics, EnsembleAnnealer, EnsembleConfig, GreedyDescent,
    IsingSolver, OutcomeKind, ParallelTempering, PtConfig, RunController, SimulatedAnnealing,
};
use std::path::PathBuf;

/// The CI matrix leg's worker count (defaults to 2 for local runs).
fn env_threads() -> usize {
    std::env::var("SAIM_DETERMINISM_THREADS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(2)
}

/// A QKP-derived Ising model — the instance family every other determinism
/// suite in this directory uses.
fn qkp_model(n: usize, seed: u64) -> saim_ising::IsingModel {
    let inst = generate::qkp(n, 0.5, seed).expect("valid parameters");
    let enc = inst.encode().expect("encodes");
    saim_core::penalty_qubo(&enc, enc.penalty_for_alpha(2.0))
        .expect("valid penalty")
        .to_ising()
}

/// The schedule legs under test: two hot constants (where the bracket
/// decision kernel fires on nearly every update) and a deep quench.
fn legs() -> [BetaSchedule; 3] {
    [
        BetaSchedule::constant(2.0),
        BetaSchedule::constant(8.0),
        BetaSchedule::linear(12.0),
    ]
}

/// A controller that deterministically interrupts after `stop` sweeps.
fn interrupt_at(stop: u64) -> RunController {
    RunController::unlimited()
        .with_stop_after(stop)
        .with_poll_interval(1)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// SA interrupted at a *random* sweep of a random schedule leg resumes
    /// to the exact uninterrupted outcome — states, energies, and the
    /// full-schedule `mcs` count included.
    #[test]
    fn sa_resumes_bit_identically_from_any_sweep(stop in 1u64..120, leg in 0usize..3) {
        let model = qkp_model(20, 77);
        let schedule = legs()[leg];
        let mcs = 120;
        let oracle = SimulatedAnnealing::new(schedule, mcs, 5).solve(&model);

        let cut = SimulatedAnnealing::new(schedule, mcs, 5)
            .solve_controlled(&model, &interrupt_at(stop));
        prop_assert_eq!(cut.status, OutcomeKind::Checkpointed);
        prop_assert_eq!(cut.outcome.mcs, stop);
        let state = cut.state.expect("a checkpointed run carries its state");

        let resumed = SimulatedAnnealing::new(schedule, mcs, 5)
            .resume_controlled(&model, &state, &RunController::unlimited())
            .expect("the state fits the solver it came from");
        prop_assert_eq!(resumed.status, OutcomeKind::Completed);
        prop_assert_eq!(resumed.outcome, oracle);
    }

    /// PT interrupted at a random point lands on a round boundary and
    /// resumes to the exact uninterrupted ladder — on both the default
    /// deep ladder and a hot β ≤ 8 ladder, at the CI-selected thread count.
    #[test]
    // round boundaries land at 10, 20, ..., 90 sweeps; the final (97-sweep)
    // boundary never checkpoints, so stops past 90 could only complete
    fn pt_resumes_bit_identically_from_any_round(stop in 1usize..91, hot in proptest::bool::ANY) {
        let model = qkp_model(18, 14);
        let config = PtConfig {
            replicas: 5,
            sweeps: 97, // deliberately not a multiple of the swap interval
            swap_interval: 10,
            threads: env_threads(),
            beta_max: if hot { 8.0 } else { PtConfig::default().beta_max },
            ..PtConfig::default()
        };
        let oracle = ParallelTempering::new(config, 123).solve(&model);

        let cut = ParallelTempering::new(config, 123)
            .solve_controlled(&model, &interrupt_at(stop as u64));
        prop_assert_eq!(cut.status, OutcomeKind::Checkpointed);
        let state = cut.state.expect("a checkpointed run carries its state");

        let resumed = ParallelTempering::new(config, 123)
            .resume_controlled(&model, &state, &RunController::unlimited())
            .expect("the state fits the solver it came from");
        prop_assert_eq!(resumed.status, OutcomeKind::Completed);
        prop_assert_eq!(resumed.outcome, oracle);
    }
}

#[test]
fn ensemble_resumes_bit_identically_across_widths_and_legs() {
    // every (schedule leg × batch width × interrupt point) cell must land
    // on the same reduced outcome as the uninterrupted run — lane grouping
    // is fixed by the checkpoint, so the width only shapes the interrupt
    let model = qkp_model(20, 41);
    let threads = env_threads();
    for schedule in legs() {
        for batch_width in [1usize, 4, 8] {
            let config = EnsembleConfig {
                replicas: 5,
                threads,
                batch_width,
                schedule,
                mcs_per_run: 120,
                dynamics: Dynamics::Gibbs,
            };
            let oracle = EnsembleAnnealer::new(config, 13).solve(&model);
            for stop in [1u64, 37, 90, 119] {
                let cut =
                    EnsembleAnnealer::new(config, 13).solve_controlled(&model, &interrupt_at(stop));
                assert_eq!(
                    cut.status,
                    OutcomeKind::Checkpointed,
                    "width {batch_width}, stop {stop}"
                );
                let state = cut.state.expect("a checkpointed run carries its state");

                let resumed = EnsembleAnnealer::new(config, 13)
                    .resume_controlled(&model, &state, &RunController::unlimited())
                    .expect("the state fits the ensemble it came from");
                assert_eq!(resumed.status, OutcomeKind::Completed);
                assert_eq!(resumed.outcome, oracle, "width {batch_width}, stop {stop}");
            }
        }
    }
}

#[test]
fn ensemble_checkpoints_resume_at_any_worker_count() {
    // a checkpoint taken under one thread count must finish identically
    // under 1, 2, and 8 resuming workers — group membership travels in the
    // state image, so the pool only changes which thread finishes which lane
    let model = qkp_model(20, 52);
    let config = |threads: usize| EnsembleConfig {
        replicas: 6,
        threads,
        batch_width: 4,
        schedule: BetaSchedule::constant(8.0),
        mcs_per_run: 100,
        dynamics: Dynamics::Gibbs,
    };
    let oracle = EnsembleAnnealer::new(config(1), 29).solve(&model);
    let cut = EnsembleAnnealer::new(config(env_threads()), 29)
        .solve_controlled(&model, &interrupt_at(43));
    assert_eq!(cut.status, OutcomeKind::Checkpointed);
    let state = cut.state.expect("a checkpointed run carries its state");
    for threads in [1usize, 2, 8] {
        let resumed = EnsembleAnnealer::new(config(threads), 29)
            .resume_controlled(&model, &state, &RunController::unlimited())
            .expect("the state fits the ensemble it came from");
        assert_eq!(resumed.outcome, oracle, "resume threads = {threads}");
    }
}

#[test]
fn descent_resumes_bit_identically() {
    // a frustrated chain that takes several greedy sweeps to settle, so
    // interrupts after sweeps 1 and 2 both land mid-descent (a descent that
    // just converged always reports `Completed`, never a checkpoint)
    let mut b = saim_ising::QuboBuilder::new(24);
    for i in 0..24 {
        b.add_linear(i, if i % 2 == 0 { -1.0 } else { 0.75 })
            .expect("valid index");
    }
    for i in 1..24 {
        b.add_pair(i - 1, i, if i % 3 == 0 { 1.5 } else { -0.5 })
            .expect("valid pair");
    }
    let model = b.build().to_ising();
    let oracle = GreedyDescent::new(5).solve(&model);
    assert!(
        oracle.mcs > 2,
        "the model must take several sweeps to settle"
    );

    for stop in [1u64, 2] {
        let cut = GreedyDescent::new(5).solve_controlled(&model, &interrupt_at(stop));
        assert_eq!(cut.status, OutcomeKind::Checkpointed, "stop {stop}");
        let state = cut.state.expect("a checkpointed run carries its state");
        let resumed = GreedyDescent::new(5)
            .resume_controlled(&model, &state, &RunController::unlimited())
            .expect("the state fits the descent it came from");
        assert_eq!(resumed.status, OutcomeKind::Completed);
        assert_eq!(resumed.outcome, oracle, "stop {stop}");
    }
}

#[test]
fn chained_interrupts_still_replay_the_uninterrupted_run() {
    // interrupt → resume → interrupt again → resume: two checkpoint hops
    // must compose to the same bits as zero
    let model = qkp_model(20, 88);
    let schedule = BetaSchedule::constant(2.0);
    let oracle = SimulatedAnnealing::new(schedule, 150, 9).solve(&model);

    let first =
        SimulatedAnnealing::new(schedule, 150, 9).solve_controlled(&model, &interrupt_at(30));
    assert_eq!(first.status, OutcomeKind::Checkpointed);
    let second = SimulatedAnnealing::new(schedule, 150, 9)
        .resume_controlled(
            &model,
            &first.state.expect("first hop checkpoints"),
            &interrupt_at(100),
        )
        .expect("the state fits");
    assert_eq!(second.status, OutcomeKind::Checkpointed);
    assert_eq!(second.outcome.mcs, 100);
    let last = SimulatedAnnealing::new(schedule, 150, 9)
        .resume_controlled(
            &model,
            &second.state.expect("second hop checkpoints"),
            &RunController::unlimited(),
        )
        .expect("the state fits");
    assert_eq!(last.status, OutcomeKind::Completed);
    assert_eq!(last.outcome, oracle);
}

#[test]
fn a_checkpoint_file_resumes_bit_identically_after_the_disk_round_trip() {
    // the full production path: interrupt a spec'd job, persist the
    // checkpoint, load it back, and resume from the *file* — the completed
    // outcome must be canonical-equal to a never-interrupted `run()`, at
    // every batch width the lane-major engine groups replicas into
    let dir = std::env::temp_dir().join(format!("saim-resume-determinism-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("scratch dir is creatable");

    let inst = generate::qkp(20, 0.5, 7).expect("valid parameters");
    let enc = inst.encode().expect("encodes");
    let qubo = saim_core::penalty_qubo(&enc, enc.penalty_for_alpha(2.0)).expect("valid penalty");
    for (job, batch_width) in [(0u64, 1usize), (1, 4), (2, 8)] {
        let spec = JobSpec::new(
            job,
            qubo.clone(),
            SolverSpec::Ensemble(EnsembleConfig {
                replicas: 4,
                threads: env_threads(),
                batch_width,
                schedule: BetaSchedule::constant(8.0),
                mcs_per_run: 90,
                dynamics: Dynamics::Gibbs,
            }),
            31,
        )
        .with_instance_digest(inst.digest());
        let oracle = spec.run();

        let cut = spec.run_controlled(&interrupt_at(40));
        assert_eq!(cut.outcome.outcome_kind, OutcomeKind::Checkpointed);
        let checkpoint = *cut
            .checkpoint
            .expect("the interrupted run carries a checkpoint");
        let path: PathBuf = dir.join(format!("job-{job:06}.ckpt"));
        checkpoint.save(&path).expect("saves");

        let loaded = Checkpoint::load(&path).expect("an untouched file loads");
        assert_eq!(loaded, checkpoint);
        let resumed = loaded
            .spec
            .resume_controlled(&loaded.engine, &RunController::unlimited())
            .expect("the checkpoint fits its embedded spec");
        assert_eq!(resumed.outcome.outcome_kind, OutcomeKind::Completed);
        assert_eq!(
            resumed.outcome.canonical(),
            oracle.canonical(),
            "batch width {batch_width}"
        );
    }

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn a_spin_major_era_checkpoint_restores_under_the_lane_major_layout() {
    // `tests/fixtures/spin_major_ensemble_w4.ckpt` was written by the
    // spin-major (n × W plane) build of the batch engine, interrupted at
    // sweep 40 of a width-4 ensemble job. Checkpoints store per-lane
    // *serial machine* images, not plane slabs, so the lane-major engine
    // must scatter them into its own layout and finish bit-identically to
    // the embedded spec's uninterrupted run — a layout change is not a
    // checkpoint format bump.
    let path = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures/spin_major_ensemble_w4.ckpt");
    let loaded = Checkpoint::load(&path).expect("the spin-major fixture still loads");
    let oracle = loaded.spec.run();
    let resumed = loaded
        .spec
        .resume_controlled(&loaded.engine, &RunController::unlimited())
        .expect("the fixture fits its embedded spec");
    assert_eq!(resumed.outcome.outcome_kind, OutcomeKind::Completed);
    assert_eq!(resumed.outcome.canonical(), oracle.canonical());
}
