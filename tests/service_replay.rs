//! Service determinism: every result streamed through the batched job
//! service must be **bit-identical** to the direct engine / `SaimRunner`
//! call with the same seed — for any worker count, queue depth, or
//! submission interleaving. The service adds scheduling, never randomness.
//!
//! CI runs this suite in the same 1/2/8-thread matrix as
//! `tests/determinism.rs` (`SAIM_DETERMINISM_THREADS` selects the
//! env-matrix leg's worker count).

use saim_core::{ConstrainedProblem, SaimConfig, SaimRunner};
use saim_knapsack::generate;
use saim_machine::service::{solver_service, JobOutcome, JobSpec, ServiceConfig, SolverSpec};
use saim_machine::{
    derive_seed, BetaSchedule, Dynamics, EnsembleAnnealer, EnsembleConfig, GreedyDescent,
    IsingSolver, ParallelTempering, PtConfig,
};
use std::time::Duration;

/// The three solver kinds the service schedules, deliberately mixing
/// explicit and auto-sized (`threads: 0`) inner threading — worker threads
/// run auto-sized engines inline, the caller's thread fans them out, and
/// both must read identically.
fn solver_kinds() -> [SolverSpec; 3] {
    [
        SolverSpec::Ensemble(EnsembleConfig {
            replicas: 3,
            threads: 0,
            batch_width: 0,
            schedule: BetaSchedule::linear(9.0),
            mcs_per_run: 80,
            dynamics: Dynamics::Gibbs,
        }),
        SolverSpec::Pt(PtConfig {
            replicas: 4,
            sweeps: 70,
            swap_interval: 10,
            threads: 1,
            ..PtConfig::default()
        }),
        SolverSpec::Descent { max_sweeps: 400 },
    ]
}

/// Nine jobs: three QKP instances × the three solver kinds, each job with
/// its own SplitMix-derived seed and its instance's digest.
fn mixed_specs() -> Vec<JobSpec> {
    let mut specs = Vec::new();
    for (slot, n) in [18usize, 22, 26].into_iter().enumerate() {
        let inst = generate::qkp(n, 0.5, 40 + slot as u64).expect("valid parameters");
        let enc = inst.encode().expect("encodes");
        let qubo =
            saim_core::penalty_qubo(&enc, enc.penalty_for_alpha(2.0)).expect("valid penalty");
        for (kind, solver) in solver_kinds().into_iter().enumerate() {
            let job = (slot * 3 + kind) as u64;
            specs.push(
                JobSpec::new(job, qubo.clone(), solver, derive_seed(7, job))
                    .with_instance_digest(inst.digest()),
            );
        }
    }
    specs
}

/// Drains a solver service, unwrapping the typed-failure layer — no job in
/// these suites panics.
fn drain_ok(
    service: &mut saim_machine::service::JobService<JobSpec, JobOutcome>,
) -> Vec<JobOutcome> {
    service
        .drain()
        .into_iter()
        .map(|r| r.expect("no solver job panicked"))
        .collect()
}

/// The direct-call oracle: the engine invocation each [`SolverSpec`]
/// variant documents, with no service machinery at all.
fn direct_outcome(spec: &JobSpec) -> JobOutcome {
    let model = spec.model.to_ising();
    let solved = match &spec.solver {
        SolverSpec::Ensemble(config) => EnsembleAnnealer::new(*config, spec.seed).solve(&model),
        SolverSpec::Pt(config) => ParallelTempering::new(*config, spec.seed).solve(&model),
        SolverSpec::Descent { max_sweeps } => GreedyDescent::new(spec.seed)
            .with_max_sweeps(*max_sweeps)
            .solve(&model),
    };
    JobOutcome::new(spec, &solved, Duration::ZERO)
}

#[test]
fn service_outcomes_replay_direct_engine_calls_for_any_worker_count() {
    let specs = mixed_specs();
    let oracle: Vec<JobOutcome> = specs.iter().map(direct_outcome).collect();
    for workers in [1usize, 2, 8] {
        for queue_depth in [1usize, 64] {
            let mut service = solver_service(ServiceConfig {
                workers,
                queue_depth,
            });
            for spec in &specs {
                service.submit(spec.clone());
            }
            let outcomes = drain_ok(&mut service);
            assert_eq!(outcomes.len(), oracle.len());
            for (got, want) in outcomes.iter().zip(&oracle) {
                assert_eq!(
                    got.canonical(),
                    want.canonical(),
                    "workers = {workers}, depth = {queue_depth}, job {}",
                    want.job
                );
                // byte-identical on the wire, too — what a result store
                // would actually compare
                assert_eq!(got.canonical().to_json(), want.canonical().to_json());
            }
        }
    }
}

#[test]
fn submission_interleaving_never_changes_outcomes() {
    let specs = mixed_specs();
    let oracle: Vec<JobOutcome> = specs.iter().map(direct_outcome).collect();
    // two distinct submission orders: reversed, and inside-out interleaved
    let reversed: Vec<usize> = (0..specs.len()).rev().collect();
    let mut interleaved = Vec::new();
    let (mut lo, mut hi) = (0usize, specs.len() - 1);
    while lo < hi {
        interleaved.push(lo);
        interleaved.push(hi);
        lo += 1;
        hi -= 1;
    }
    if lo == hi {
        interleaved.push(lo);
    }
    for order in [reversed, interleaved] {
        let mut service = solver_service(ServiceConfig {
            workers: 4,
            queue_depth: 3,
        });
        for &i in &order {
            service.submit(specs[i].clone());
        }
        // consume in completion order and re-associate through the echoed
        // job id — the streaming path a front-end would use
        let mut seen = 0usize;
        while let Some(result) = service.recv() {
            let result = result.expect("no solver job panicked");
            let got = result.value.canonical();
            let want = oracle[got.job as usize].canonical();
            assert_eq!(got, want, "job {}", got.job);
            assert_eq!(got.to_json(), want.to_json());
            seen += 1;
        }
        assert_eq!(seen, specs.len());
    }
}

/// Hot-regime solver kinds (β ≤ 8 throughout): ensemble and PT runs that
/// never leave the regime the bracket decision kernel accelerates, plus a
/// descent control.
fn hot_solver_kinds() -> [SolverSpec; 3] {
    [
        SolverSpec::Ensemble(EnsembleConfig {
            replicas: 3,
            threads: 0,
            batch_width: 0,
            schedule: BetaSchedule::constant(4.0),
            mcs_per_run: 70,
            dynamics: Dynamics::Gibbs,
        }),
        SolverSpec::Pt(PtConfig {
            replicas: 4,
            sweeps: 60,
            swap_interval: 10,
            beta_min: 0.5,
            beta_max: 8.0,
            threads: 1,
        }),
        SolverSpec::Descent { max_sweeps: 300 },
    ]
}

#[test]
fn hot_regime_jobs_replay_direct_engine_calls() {
    // the hot-regime leg of the replay contract, in the same env-selected
    // worker matrix as the deep-quench suite: β ∈ {2, 4, 8} jobs streamed
    // through the service must match the direct engine calls bit for bit
    let env_workers: usize = std::env::var("SAIM_DETERMINISM_THREADS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(2);
    let mut specs = Vec::new();
    for (slot, beta) in [2.0f64, 4.0, 8.0].into_iter().enumerate() {
        let inst = generate::qkp(20 + 2 * slot, 0.5, 70 + slot as u64).expect("valid parameters");
        let enc = inst.encode().expect("encodes");
        let qubo =
            saim_core::penalty_qubo(&enc, enc.penalty_for_alpha(2.0)).expect("valid penalty");
        for (kind, solver) in hot_solver_kinds().into_iter().enumerate() {
            let solver = match solver {
                SolverSpec::Ensemble(config) => SolverSpec::Ensemble(EnsembleConfig {
                    schedule: BetaSchedule::constant(beta),
                    ..config
                }),
                other => other,
            };
            let job = (slot * 3 + kind) as u64;
            specs.push(
                JobSpec::new(job, qubo.clone(), solver, derive_seed(11, job))
                    .with_instance_digest(inst.digest()),
            );
        }
    }
    let oracle: Vec<JobOutcome> = specs.iter().map(direct_outcome).collect();
    for workers in [1usize, env_workers] {
        let mut service = solver_service(ServiceConfig {
            workers,
            queue_depth: 8,
        });
        for spec in &specs {
            service.submit(spec.clone());
        }
        let outcomes = drain_ok(&mut service);
        assert_eq!(outcomes.len(), oracle.len());
        for (got, want) in outcomes.iter().zip(&oracle) {
            assert_eq!(
                got.canonical(),
                want.canonical(),
                "workers = {workers}, job {}",
                want.job
            );
            assert_eq!(got.canonical().to_json(), want.canonical().to_json());
        }
    }
}

#[test]
fn service_is_invariant_at_env_selected_worker_count() {
    // CI runs this test in a matrix over SAIM_DETERMINISM_THREADS=1/2/8;
    // whatever the leg, the service must reproduce the one-worker stream
    let workers: usize = std::env::var("SAIM_DETERMINISM_THREADS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(2);
    let specs = mixed_specs();
    let run = |workers: usize| {
        let mut service = solver_service(ServiceConfig {
            workers,
            queue_depth: 4,
        });
        for spec in &specs {
            service.submit(spec.clone());
        }
        drain_ok(&mut service)
            .into_iter()
            .map(|o| o.canonical())
            .collect::<Vec<_>>()
    };
    assert_eq!(run(workers), run(1), "workers = {workers}");
}

/// The SAIM-level jobs of the `run_jobs` facade: per-instance penalties
/// and per-job seeds, exactly like a benchmark grid.
fn saim_jobs() -> Vec<(SaimConfig, saim_knapsack::QkpEncoded)> {
    (0..4u64)
        .map(|i| {
            let inst = generate::qkp(16 + 2 * i as usize, 0.5, 60 + i).expect("valid parameters");
            let enc = inst.encode().expect("encodes");
            let config = SaimConfig {
                penalty: enc.penalty_for_alpha(2.0),
                eta: 20.0,
                iterations: 10,
                seed: derive_seed(9, i),
            };
            (config, enc)
        })
        .collect()
}

#[test]
fn run_jobs_replays_direct_saim_runs_for_any_worker_count() {
    let solver = SolverSpec::Ensemble(EnsembleConfig {
        replicas: 3,
        threads: 1,
        batch_width: 0,
        schedule: BetaSchedule::linear(10.0),
        mcs_per_run: 90,
        dynamics: Dynamics::Gibbs,
    });
    let oracle: Vec<_> = saim_jobs()
        .into_iter()
        .map(|(config, enc)| SaimRunner::new(config).run_spec(&enc, &solver))
        .collect();
    for workers in [1usize, 2, 8] {
        let outcomes = SaimRunner::run_jobs(
            saim_jobs(),
            &solver,
            ServiceConfig {
                workers,
                queue_depth: 2,
            },
        );
        assert_eq!(outcomes.len(), oracle.len());
        for (i, (got, want)) in outcomes.iter().zip(&oracle).enumerate() {
            assert_eq!(got, want, "workers = {workers}, job {i}");
            // the serialized experiment records match byte for byte
            assert_eq!(
                serde_json::to_string(got).expect("serializes"),
                serde_json::to_string(want).expect("serializes")
            );
        }
    }
}

#[test]
fn run_jobs_is_invariant_under_job_permutations() {
    // run_jobs returns outcomes in job order, so permuting the job list
    // must permute the outcomes and change nothing else
    let solver = SolverSpec::Pt(PtConfig {
        replicas: 4,
        sweeps: 60,
        swap_interval: 10,
        threads: 1,
        ..PtConfig::default()
    });
    let service = ServiceConfig {
        workers: 3,
        queue_depth: 2,
    };
    let forward = SaimRunner::run_jobs(saim_jobs(), &solver, service);
    let mut shuffled_jobs = saim_jobs();
    shuffled_jobs.reverse();
    let backward = SaimRunner::run_jobs(shuffled_jobs, &solver, service);
    assert_eq!(backward, forward.iter().rev().cloned().collect::<Vec<_>>());
}

#[test]
fn zero_and_single_job_streams_through_the_solver_service() {
    let mut empty = solver_service(ServiceConfig {
        workers: 2,
        queue_depth: 1,
    });
    assert!(empty.recv().is_none());
    assert!(empty.drain().is_empty());

    let spec = &mixed_specs()[0];
    let mut single = solver_service(ServiceConfig {
        workers: 2,
        queue_depth: 1,
    });
    assert_eq!(single.submit(spec.clone()), 0);
    let result = single
        .recv()
        .expect("one job outstanding")
        .expect("no solver job panicked");
    assert_eq!(result.submitted, 0);
    assert_eq!(result.value.canonical(), direct_outcome(spec).canonical());
    assert!(single.recv().is_none());
}
