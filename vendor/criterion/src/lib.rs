//! Offline shim for `criterion`.
//!
//! Implements the group/bench/iter API surface this workspace's benches use
//! and reports median wall-clock per iteration (plus throughput when set) to
//! stdout. No statistical machinery, plots, or baselines — the point is a
//! stable, dependency-free timing harness for `cargo bench` in an offline
//! container. Set `CRITERION_SAMPLES` to override the per-bench sample
//! count.

#![forbid(unsafe_code)]

use std::fmt;
use std::time::Instant;

pub use std::hint::black_box;

/// Benchmark identifier: a function name plus an optional parameter.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    function: Option<String>,
    parameter: Option<String>,
}

impl BenchmarkId {
    /// An id with both a function name and a parameter.
    pub fn new(function: impl Into<String>, parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            function: Some(function.into()),
            parameter: Some(parameter.to_string()),
        }
    }

    /// An id carrying only a parameter (the group supplies the name).
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            function: None,
            parameter: Some(parameter.to_string()),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(name: &str) -> Self {
        BenchmarkId {
            function: Some(name.to_owned()),
            parameter: None,
        }
    }
}

impl From<String> for BenchmarkId {
    fn from(name: String) -> Self {
        BenchmarkId {
            function: Some(name),
            parameter: None,
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match (&self.function, &self.parameter) {
            (Some(n), Some(p)) => write!(f, "{n}/{p}"),
            (Some(n), None) => write!(f, "{n}"),
            (None, Some(p)) => write!(f, "{p}"),
            (None, None) => write!(f, "?"),
        }
    }
}

/// Throughput annotation for per-element rates.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Batch sizing hint (accepted for API compatibility; the shim always times
/// one input per routine call).
#[derive(Debug, Clone, Copy)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One input per batch.
    PerIteration,
}

/// Times closures; handed to bench bodies.
pub struct Bencher {
    samples: usize,
    /// Median seconds per iteration of the last `iter` call.
    last_estimate: f64,
}

impl Bencher {
    /// Runs `f` repeatedly and records the median time per iteration.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // warmup: let caches/branch predictors settle and estimate cost
        let warmup_start = Instant::now();
        black_box(f());
        black_box(f());
        let rough = warmup_start.elapsed().as_secs_f64() / 2.0;
        // batch enough iterations that one sample is >= ~200µs of work
        let batch = ((2e-4 / rough.max(1e-9)).ceil() as usize).clamp(1, 1_000_000);
        let mut samples: Vec<f64> = Vec::with_capacity(self.samples);
        for _ in 0..self.samples {
            let start = Instant::now();
            for _ in 0..batch {
                black_box(f());
            }
            samples.push(start.elapsed().as_secs_f64() / batch as f64);
        }
        samples.sort_by(|a, b| a.partial_cmp(b).expect("finite timings"));
        self.last_estimate = samples[samples.len() / 2];
    }

    /// Runs `routine` on fresh inputs from `setup`; only `routine` is timed.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        let mut samples: Vec<f64> = Vec::with_capacity(self.samples);
        for _ in 0..self.samples {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            samples.push(start.elapsed().as_secs_f64());
        }
        samples.sort_by(|a, b| a.partial_cmp(b).expect("finite timings"));
        self.last_estimate = samples[samples.len() / 2];
    }
}

/// A named collection of benchmarks sharing settings.
pub struct BenchmarkGroup<'a> {
    name: String,
    samples: usize,
    throughput: Option<Throughput>,
    _criterion: &'a mut Criterion,
}

impl<'a> BenchmarkGroup<'a> {
    /// Sets the number of timing samples per benchmark.
    pub fn sample_size(&mut self, samples: usize) -> &mut Self {
        self.samples = samples.max(3);
        self
    }

    /// Annotates subsequent benchmarks with a throughput.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    fn run_one(&mut self, id: String, f: impl FnOnce(&mut Bencher)) {
        let mut bencher = Bencher {
            samples: self.samples,
            last_estimate: 0.0,
        };
        f(&mut bencher);
        let secs = bencher.last_estimate;
        let line = format!("{}/{id}  time: {}", self.name, format_secs(secs));
        match self.throughput {
            Some(Throughput::Elements(n)) if secs > 0.0 => {
                println!("{line}  thrpt: {:.3} Melem/s", n as f64 / secs / 1e6);
            }
            Some(Throughput::Bytes(n)) if secs > 0.0 => {
                println!(
                    "{line}  thrpt: {:.3} MiB/s",
                    n as f64 / secs / (1024.0 * 1024.0)
                );
            }
            _ => println!("{line}"),
        }
    }

    /// Benchmarks a closure under `id`.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnOnce(&mut Bencher),
    {
        let id = id.into().to_string();
        self.run_one(id, f);
        self
    }

    /// Benchmarks a closure that receives a shared input.
    pub fn bench_with_input<I: ?Sized, F>(&mut self, id: BenchmarkId, input: &I, f: F) -> &mut Self
    where
        F: FnOnce(&mut Bencher, &I),
    {
        let id = id.to_string();
        self.run_one(id, |b| f(b, input));
        self
    }

    /// Ends the group (kept for API compatibility).
    pub fn finish(&mut self) {}
}

fn format_secs(secs: f64) -> String {
    if secs >= 1.0 {
        format!("{secs:.3} s")
    } else if secs >= 1e-3 {
        format!("{:.3} ms", secs * 1e3)
    } else if secs >= 1e-6 {
        format!("{:.3} µs", secs * 1e6)
    } else {
        format!("{:.1} ns", secs * 1e9)
    }
}

/// The benchmark driver.
pub struct Criterion {
    default_samples: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        let default_samples = std::env::var("CRITERION_SAMPLES")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(15);
        Criterion { default_samples }
    }
}

impl Criterion {
    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            samples: self.default_samples,
            throughput: None,
            _criterion: self,
        }
    }

    /// Benchmarks a closure outside any group.
    pub fn bench_function<F>(&mut self, name: &str, f: F) -> &mut Self
    where
        F: FnOnce(&mut Bencher),
    {
        let mut group = self.benchmark_group(name.to_owned());
        group.run_one(String::new(), f);
        self
    }
}

/// Declares a group-runner function invoking each benchmark fn in order.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn trivial_bench(c: &mut Criterion) {
        let mut group = c.benchmark_group("shim_smoke");
        group.sample_size(3);
        group.throughput(Throughput::Elements(10));
        group.bench_with_input(BenchmarkId::from_parameter(10), &10u64, |b, &n| {
            b.iter(|| (0..n).sum::<u64>())
        });
        group.bench_function("plain", |b| b.iter(|| 1 + 1));
        group.finish();
    }

    #[test]
    fn harness_runs() {
        let mut criterion = Criterion { default_samples: 3 };
        trivial_bench(&mut criterion);
    }

    #[test]
    fn duration_formatting() {
        assert!(format_secs(2.0).ends_with(" s"));
        assert!(format_secs(2e-3).ends_with(" ms"));
        assert!(format_secs(2e-6).ends_with(" µs"));
        assert!(format_secs(2e-9).ends_with(" ns"));
    }
}
