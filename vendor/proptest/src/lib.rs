//! Offline shim for `proptest`.
//!
//! Implements the subset this workspace's property tests use: the
//! [`Strategy`] trait with `prop_map`/`prop_flat_map`, range strategies over
//! ints and floats, tuple strategies, [`collection::vec`], [`bool::ANY`],
//! the [`proptest!`]/[`prop_assert!`]/[`prop_assert_eq!`]/[`prop_assume!`]
//! macros and [`ProptestConfig::with_cases`].
//!
//! Differences from the real crate, by design:
//!
//! - **No shrinking.** Failures report the raw case; rerun with the printed
//!   case index if you need to bisect.
//! - **Deterministic seeding.** Each test's RNG is seeded from a hash of the
//!   test name, so failures replay identically everywhere (the real crate
//!   uses OS entropy plus a regression file).

#![forbid(unsafe_code)]

use std::ops::{Range, RangeInclusive};

/// The per-test RNG handed to strategies (SplitMix64 core).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Creates an RNG from an explicit seed.
    pub fn new(seed: u64) -> Self {
        TestRng {
            state: seed ^ 0x5DEE_CE66_D1CE_4E5B,
        }
    }

    /// The next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform draw below `bound` (> 0).
    pub fn below(&mut self, bound: u64) -> u64 {
        ((u128::from(self.next_u64()) * u128::from(bound)) >> 64) as u64
    }
}

/// Seeds a [`TestRng`] from a test name (FNV-1a), used by [`proptest!`].
pub fn rng_for_test(name: &str) -> TestRng {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for b in name.bytes() {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
    }
    TestRng::new(hash)
}

/// Runner configuration (case count only).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ProptestConfig {
    /// Number of random cases per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` random cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        // leaner than upstream's 256: the suite runs in CI on every push
        ProptestConfig { cases: 64 }
    }
}

/// A generator of random values.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }

    /// Feeds generated values into a strategy-producing `f` and samples that.
    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { inner: self, f }
    }

    /// Type-erases the strategy (API-compatibility helper).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy {
            inner: Box::new(self),
        }
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;

    fn sample(&self, rng: &mut TestRng) -> Self::Value {
        (**self).sample(rng)
    }
}

/// A boxed, type-erased strategy.
pub struct BoxedStrategy<T> {
    inner: Box<dyn Strategy<Value = T>>,
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;

    fn sample(&self, rng: &mut TestRng) -> T {
        self.inner.sample(rng)
    }
}

/// Strategy returned by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, U, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> U,
{
    type Value = U;

    fn sample(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.sample(rng))
    }
}

/// Strategy returned by [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S, S2, F> Strategy for FlatMap<S, F>
where
    S: Strategy,
    S2: Strategy,
    F: Fn(S::Value) -> S2,
{
    type Value = S2::Value;

    fn sample(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.inner.sample(rng)).sample(rng)
    }
}

/// A strategy always yielding a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_range_strategy_int {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u128;
                let z = ((u128::from(rng.next_u64()) * span) >> 64) as i128;
                (self.start as i128 + z) as $t
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start() <= self.end(), "empty range strategy");
                let span = (*self.end() as i128 - *self.start() as i128) as u128 + 1;
                let z = ((u128::from(rng.next_u64()) * span) >> 64) as i128;
                (*self.start() as i128 + z) as $t
            }
        }
    )*};
}

impl_range_strategy_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;

    fn sample(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty float range strategy");
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

impl Strategy for RangeInclusive<f64> {
    type Value = f64;

    fn sample(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start() <= self.end(), "empty float range strategy");
        self.start() + rng.unit_f64() * (self.end() - self.start())
    }
}

macro_rules! impl_tuple_strategy {
    ($(($($n:tt $t:ident),+)),*) => {$(
        impl<$($t: Strategy),+> Strategy for ($($t,)+) {
            type Value = ($($t::Value,)+);

            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$n.sample(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy!(
    (0 A),
    (0 A, 1 B),
    (0 A, 1 B, 2 C),
    (0 A, 1 B, 2 C, 3 D),
    (0 A, 1 B, 2 C, 3 D, 4 E),
    (0 A, 1 B, 2 C, 3 D, 4 E, 5 F)
);

/// Collection strategies (`proptest::collection`).
pub mod collection {
    use super::{Strategy, TestRng};

    /// Length specifications accepted by [`vec`].
    pub trait SizeRange {
        /// Draws a concrete length.
        fn pick(&self, rng: &mut TestRng) -> usize;
    }

    impl SizeRange for usize {
        fn pick(&self, _rng: &mut TestRng) -> usize {
            *self
        }
    }

    impl SizeRange for std::ops::Range<usize> {
        fn pick(&self, rng: &mut TestRng) -> usize {
            assert!(self.start < self.end, "empty size range");
            self.start + rng.below((self.end - self.start) as u64) as usize
        }
    }

    impl SizeRange for std::ops::RangeInclusive<usize> {
        fn pick(&self, rng: &mut TestRng) -> usize {
            self.start() + rng.below((self.end() - self.start() + 1) as u64) as usize
        }
    }

    /// Strategy for vectors of `elem` values with a drawn length.
    pub struct VecStrategy<S, L> {
        elem: S,
        len: L,
    }

    /// Builds a vector strategy (`proptest::collection::vec`).
    pub fn vec<S: Strategy, L: SizeRange>(elem: S, len: L) -> VecStrategy<S, L> {
        VecStrategy { elem, len }
    }

    impl<S: Strategy, L: SizeRange> Strategy for VecStrategy<S, L> {
        type Value = Vec<S::Value>;

        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.len.pick(rng);
            (0..n).map(|_| self.elem.sample(rng)).collect()
        }
    }
}

/// Boolean strategies (`proptest::bool`).
pub mod bool {
    use super::{Strategy, TestRng};

    /// A fair coin.
    #[derive(Debug, Clone, Copy)]
    pub struct Any;

    /// The fair-coin strategy (`proptest::bool::ANY`).
    pub const ANY: Any = Any;

    impl Strategy for Any {
        type Value = bool;

        fn sample(&self, rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }
}

/// Everything the tests import via `use proptest::prelude::*`.
pub mod prelude {
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest, BoxedStrategy, Just,
        ProptestConfig, Strategy,
    };
    /// Namespace alias so `prop::collection::vec` style paths work.
    pub mod prop {
        pub use crate::{bool, collection};
    }
}

/// Asserts a condition inside a property (maps to `assert!`).
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

/// Asserts equality inside a property (maps to `assert_eq!`).
#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

/// Asserts inequality inside a property (maps to `assert_ne!`).
#[macro_export]
macro_rules! prop_assert_ne {
    ($($args:tt)*) => { assert_ne!($($args)*) };
}

/// Skips the current case when its precondition fails.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(, $($rest:tt)*)?) => {
        if !($cond) {
            continue;
        }
    };
}

/// Declares property tests: each `fn name(binding in strategy, ...)` becomes
/// a `#[test]` running [`ProptestConfig::cases`] sampled cases.
#[macro_export]
macro_rules! proptest {
    (@cfg ($cfg:expr)
        $(
            $(#[$attr:meta])*
            fn $name:ident($($arg:ident in $strategy:expr),* $(,)?) $body:block
        )*
    ) => {
        $(
            $(#[$attr])*
            #[allow(unused_mut)]
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                let mut rng = $crate::rng_for_test(concat!(module_path!(), "::", stringify!($name)));
                let strategies = ($(&$strategy,)*);
                for case in 0..config.cases {
                    let ($(mut $arg,)*) = $crate::Strategy::sample(&strategies, &mut rng);
                    let _ = case;
                    $body
                }
            }
        )*
    };
    (
        #![proptest_config($cfg:expr)]
        $($rest:tt)*
    ) => {
        $crate::proptest!(@cfg ($cfg) $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@cfg ($crate::ProptestConfig::default()) $($rest)*);
    };
}

#[cfg(test)]
mod tests {
    use super::collection;
    use super::*;

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = TestRng::new(1);
        for _ in 0..500 {
            let v = (3usize..9).sample(&mut rng);
            assert!((3..9).contains(&v));
            let w = (2u64..=5).sample(&mut rng);
            assert!((2..=5).contains(&w));
            let f = (-2.0..2.0f64).sample(&mut rng);
            assert!((-2.0..2.0).contains(&f));
        }
    }

    #[test]
    fn combinators_compose() {
        let strat = (1usize..4)
            .prop_flat_map(|n| collection::vec(0.0..1.0f64, n).prop_map(move |v| (n, v)));
        let mut rng = TestRng::new(2);
        for _ in 0..100 {
            let (n, v) = strat.sample(&mut rng);
            assert_eq!(v.len(), n);
        }
    }

    #[test]
    fn deterministic_per_name() {
        let mut a = rng_for_test("x");
        let mut b = rng_for_test("x");
        assert_eq!(a.next_u64(), b.next_u64());
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        /// The macro itself round-trips bindings and config.
        #[test]
        fn macro_smoke(n in 1usize..5, xs in collection::vec(0u8..2, 0..4), flag in crate::bool::ANY) {
            prop_assert!((1..5).contains(&n));
            prop_assert!(xs.len() < 4);
            prop_assume!(xs.len() < 4 || flag);
            prop_assert_eq!(xs.iter().filter(|&&b| b > 1).count(), 0);
        }
    }
}
