//! Offline shim for the `rand` crate (0.8-compatible subset).
//!
//! Provides the trait plumbing this workspace uses: [`RngCore`],
//! [`SeedableRng`], the [`Rng`] extension trait with `gen`, `gen_range` and
//! `gen_bool`, and uniform sampling over integer and float ranges. The
//! algorithms are fixed and platform-independent so every seeded stream
//! replays bit-identically; they are *not* bit-compatible with upstream
//! `rand`, which this repository never relied on.

#![forbid(unsafe_code)]

use std::ops::{Range, RangeInclusive};

/// A source of random bits.
pub trait RngCore {
    /// The next 32 random bits.
    fn next_u32(&mut self) -> u32;

    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }

    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// A deterministic RNG constructible from a seed.
pub trait SeedableRng: Sized {
    /// The raw seed type (a byte array).
    type Seed: Default + AsMut<[u8]>;

    /// Builds the generator from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Builds the generator from a `u64`, expanding it with SplitMix64.
    fn seed_from_u64(state: u64) -> Self {
        let mut seed = Self::Seed::default();
        let mut sm = SplitMix64 { state };
        for chunk in seed.as_mut().chunks_mut(8) {
            let bytes = sm.next().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    fn next(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// Types samplable from raw random bits via the `Standard` distribution.
pub trait Standard: Sized {
    /// Draws one value from `rng`.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32() & 1 == 1
    }
}

impl Standard for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

macro_rules! impl_standard_int {
    ($($t:ty => $m:ident),*) => {$(
        impl Standard for $t {
            fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.$m() as $t
            }
        }
    )*};
}

impl_standard_int!(u8 => next_u32, u16 => next_u32, u32 => next_u32,
    u64 => next_u64, usize => next_u64, i8 => next_u32, i16 => next_u32,
    i32 => next_u32, i64 => next_u64, isize => next_u64);

/// Types uniformly samplable from a bounded range.
pub trait SampleUniform: Copy + PartialOrd {
    /// Uniform draw in `[low, high)` — or `[low, high]` when `inclusive`.
    fn sample_uniform<R: RngCore + ?Sized>(
        rng: &mut R,
        low: Self,
        high: Self,
        inclusive: bool,
    ) -> Self;
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_uniform<R: RngCore + ?Sized>(
                rng: &mut R,
                low: Self,
                high: Self,
                inclusive: bool,
            ) -> Self {
                if inclusive {
                    assert!(low <= high, "gen_range: empty inclusive range");
                } else {
                    assert!(low < high, "gen_range: empty range");
                }
                // span in u128 so u64::MAX-wide inclusive ranges cannot overflow
                let span = (high as i128 - low as i128) as u128 + u128::from(inclusive);
                if span == 0 {
                    // inclusive full-width range: every value is fair game
                    return rng.next_u64() as $t;
                }
                // multiply-shift bounded draw (Lemire without the rejection
                // pass — the residual bias is < 2^-64, irrelevant here)
                let z = ((u128::from(rng.next_u64()) * span) >> 64) as i128;
                (low as i128 + z) as $t
            }
        }
    )*};
}

impl_sample_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleUniform for f64 {
    fn sample_uniform<R: RngCore + ?Sized>(
        rng: &mut R,
        low: Self,
        high: Self,
        _inclusive: bool,
    ) -> Self {
        assert!(low < high, "gen_range: empty float range");
        let unit = f64::sample_standard(rng);
        low + unit * (high - low)
    }
}

impl SampleUniform for f32 {
    fn sample_uniform<R: RngCore + ?Sized>(
        rng: &mut R,
        low: Self,
        high: Self,
        _inclusive: bool,
    ) -> Self {
        assert!(low < high, "gen_range: empty float range");
        let unit = f32::sample_standard(rng);
        low + unit * (high - low)
    }
}

/// Range forms accepted by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws one value from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_uniform(rng, self.start, self.end, false)
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_uniform(rng, *self.start(), *self.end(), true)
    }
}

/// Convenience extension over any [`RngCore`], mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Draws a value via the `Standard` distribution.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample_standard(self)
    }

    /// Draws a value uniformly from `range`.
    fn gen_range<T, Rg>(&mut self, range: Rg) -> T
    where
        Self: Sized,
        T: SampleUniform,
        Rg: SampleRange<T>,
    {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        f64::sample_standard(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

#[cfg(test)]
mod tests {
    use super::*;

    struct Counter(u64);

    impl RngCore for Counter {
        fn next_u32(&mut self) -> u32 {
            self.next_u64() as u32
        }

        fn next_u64(&mut self) -> u64 {
            self.0 = self.0.wrapping_mul(6364136223846793005).wrapping_add(1);
            self.0
        }
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = Counter(7);
        for _ in 0..1000 {
            let v: usize = rng.gen_range(3..10);
            assert!((3..10).contains(&v));
            let w: u64 = rng.gen_range(1..=50);
            assert!((1..=50).contains(&w));
            let f: f64 = rng.gen_range(-1.0..1.0);
            assert!((-1.0..1.0).contains(&f));
        }
    }

    #[test]
    fn standard_f64_is_unit_interval() {
        let mut rng = Counter(3);
        for _ in 0..1000 {
            let f: f64 = rng.gen();
            assert!((0.0..1.0).contains(&f));
        }
    }
}
