//! Offline shim for `rand_chacha`: [`ChaCha8Rng`], a genuine ChaCha
//! keystream generator (RFC 7539 core function) reduced to 8 rounds.
//!
//! Statistical quality matches the real crate — it is the same algorithm —
//! but the word-consumption order is this shim's own, so streams are *not*
//! bit-compatible with upstream `rand_chacha`. Every stream is fully
//! deterministic in the seed and identical across platforms, which is the
//! property this workspace's experiments rely on.

#![forbid(unsafe_code)]

use rand::{RngCore, SeedableRng};

/// Re-export module mirroring `rand_chacha::rand_core`.
pub mod rand_core {
    pub use rand::{RngCore, SeedableRng};
}

const CHACHA_ROUNDS: usize = 8;

/// A ChaCha8 random number generator.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChaCha8Rng {
    /// Key-derived state words 4..12 of the ChaCha matrix.
    key: [u32; 8],
    /// 64-bit block counter (words 12..14); nonce words are zero.
    counter: u64,
    /// Current keystream block.
    block: [u32; 16],
    /// Next unread word index in `block`; 16 = exhausted.
    word_pos: usize,
}

fn quarter_round(state: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(16);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(12);
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(8);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(7);
}

impl ChaCha8Rng {
    /// Captures the complete generator state as `(key, counter, word_pos)`.
    ///
    /// The current keystream block never needs saving: it is a pure function
    /// of `key` and the counter value it was generated under, so
    /// [`ChaCha8Rng::from_state_words`] can regenerate it on restore. Two
    /// generators with equal state words produce identical streams forever.
    pub fn state_words(&self) -> ([u32; 8], u64, usize) {
        (self.key, self.counter, self.word_pos)
    }

    /// Rebuilds a generator from [`ChaCha8Rng::state_words`] output.
    ///
    /// When the saved position sits inside a block (`word_pos < 16`), the
    /// block was generated under `counter - 1` (refill increments after
    /// generating), so the restore rewinds the counter by one, regenerates
    /// the identical block, and seeks to the saved word.
    pub fn from_state_words(key: [u32; 8], counter: u64, word_pos: usize) -> Self {
        let mut rng = ChaCha8Rng {
            key,
            counter,
            block: [0; 16],
            word_pos: 16,
        };
        if word_pos < 16 {
            rng.counter = counter.wrapping_sub(1);
            rng.refill();
            debug_assert_eq!(rng.counter, counter);
            rng.word_pos = word_pos;
        }
        rng
    }

    fn refill(&mut self) {
        let mut state: [u32; 16] = [
            // "expand 32-byte k"
            0x6170_7865,
            0x3320_646e,
            0x7962_2d32,
            0x6b20_6574,
            self.key[0],
            self.key[1],
            self.key[2],
            self.key[3],
            self.key[4],
            self.key[5],
            self.key[6],
            self.key[7],
            self.counter as u32,
            (self.counter >> 32) as u32,
            0,
            0,
        ];
        let input = state;
        for _ in 0..CHACHA_ROUNDS / 2 {
            // column round
            quarter_round(&mut state, 0, 4, 8, 12);
            quarter_round(&mut state, 1, 5, 9, 13);
            quarter_round(&mut state, 2, 6, 10, 14);
            quarter_round(&mut state, 3, 7, 11, 15);
            // diagonal round
            quarter_round(&mut state, 0, 5, 10, 15);
            quarter_round(&mut state, 1, 6, 11, 12);
            quarter_round(&mut state, 2, 7, 8, 13);
            quarter_round(&mut state, 3, 4, 9, 14);
        }
        for (out, inp) in state.iter_mut().zip(input) {
            *out = out.wrapping_add(inp);
        }
        self.block = state;
        self.counter = self.counter.wrapping_add(1);
        self.word_pos = 0;
    }
}

impl SeedableRng for ChaCha8Rng {
    type Seed = [u8; 32];

    fn from_seed(seed: Self::Seed) -> Self {
        let mut key = [0u32; 8];
        for (k, chunk) in key.iter_mut().zip(seed.chunks_exact(4)) {
            *k = u32::from_le_bytes(chunk.try_into().expect("4-byte chunk"));
        }
        ChaCha8Rng {
            key,
            counter: 0,
            block: [0; 16],
            word_pos: 16,
        }
    }
}

impl RngCore for ChaCha8Rng {
    fn next_u32(&mut self) -> u32 {
        if self.word_pos >= 16 {
            self.refill();
        }
        let w = self.block[self.word_pos];
        self.word_pos += 1;
        w
    }

    fn next_u64(&mut self) -> u64 {
        let lo = u64::from(self.next_u32());
        let hi = u64::from(self.next_u32());
        lo | (hi << 32)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seeded_streams_replay() {
        let mut a = ChaCha8Rng::seed_from_u64(42);
        let mut b = ChaCha8Rng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = ChaCha8Rng::seed_from_u64(1);
        let mut b = ChaCha8Rng::seed_from_u64(2);
        assert_ne!(
            (0..8).map(|_| a.next_u64()).collect::<Vec<_>>(),
            (0..8).map(|_| b.next_u64()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn clone_preserves_position() {
        let mut a = ChaCha8Rng::seed_from_u64(9);
        let _ = a.next_u64();
        let mut b = a.clone();
        assert_eq!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn state_words_roundtrip_mid_block_and_at_boundary() {
        // Walk a stream through every intra-block offset plus the exhausted
        // boundary; the restored generator must continue bit-identically.
        let mut a = ChaCha8Rng::seed_from_u64(321);
        for step in 0..40 {
            let (key, counter, word_pos) = a.state_words();
            let mut b = ChaCha8Rng::from_state_words(key, counter, word_pos);
            let mut probe = a.clone();
            for _ in 0..33 {
                assert_eq!(probe.next_u64(), b.next_u64(), "step {step}");
            }
            // advance one u32 word so every intra-block offset gets visited
            let _ = a.next_u32();
        }
    }

    #[test]
    fn fresh_generator_roundtrips_before_first_draw() {
        let a = ChaCha8Rng::seed_from_u64(5);
        let (key, counter, word_pos) = a.state_words();
        assert_eq!((counter, word_pos), (0, 16));
        let mut b = ChaCha8Rng::from_state_words(key, counter, word_pos);
        let mut a = a;
        for _ in 0..20 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn keystream_is_well_distributed() {
        // crude sanity: bit balance of 64k words within 1%
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        let mut ones = 0u64;
        for _ in 0..65_536 {
            ones += u64::from(rng.next_u32().count_ones());
        }
        let frac = ones as f64 / (65_536.0 * 32.0);
        assert!((frac - 0.5).abs() < 0.01, "bit fraction {frac}");
    }
}
