//! Offline shim for `serde`.
//!
//! Real serde serializes through visitor traits; this shim goes through an
//! owned [`Value`] tree instead, which is all the workspace needs (JSON
//! round-trips of experiment records). The derive macros re-exported here
//! generate `Serialize`/`Deserialize` impls against these traits.
//!
//! Field order is preserved (objects are ordered vectors), so serializing
//! equal values always yields identical JSON — the determinism tests compare
//! serialized strings directly.

#![forbid(unsafe_code)]

use std::fmt;

pub use serde_derive::{Deserialize, Serialize};

/// A dynamically-typed data tree (the shim's wire model).
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// A boolean.
    Bool(bool),
    /// A signed integer.
    Int(i64),
    /// An unsigned integer (used when the value exceeds `i64::MAX`).
    UInt(u64),
    /// A float.
    Float(f64),
    /// A string.
    Str(String),
    /// An ordered sequence.
    Array(Vec<Value>),
    /// An ordered map (field order preserved).
    Object(Vec<(String, Value)>),
}

impl Value {
    /// Looks up a field of an object value.
    ///
    /// # Errors
    ///
    /// Returns an error if `self` is not an object or the field is absent.
    pub fn field(&self, name: &str) -> Result<&Value, Error> {
        match self {
            Value::Object(fields) => fields
                .iter()
                .find(|(k, _)| k == name)
                .map(|(_, v)| v)
                .ok_or_else(|| Error::custom(format!("missing field `{name}`"))),
            other => Err(Error::custom(format!(
                "expected object with field `{name}`, found {}",
                other.kind()
            ))),
        }
    }

    /// A short description of the value's type, for error messages.
    pub fn kind(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::Int(_) | Value::UInt(_) => "integer",
            Value::Float(_) => "number",
            Value::Str(_) => "string",
            Value::Array(_) => "array",
            Value::Object(_) => "object",
        }
    }
}

/// Error raised by deserialization (and by `serde_json` parsing).
#[derive(Debug, Clone, PartialEq)]
pub struct Error {
    message: String,
}

impl Error {
    /// Builds an error with a custom message.
    pub fn custom(message: impl Into<String>) -> Self {
        Error {
            message: message.into(),
        }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.message)
    }
}

impl std::error::Error for Error {}

/// Types convertible to a [`Value`] tree.
pub trait Serialize {
    /// Converts `self` into the wire model.
    fn to_value(&self) -> Value;
}

/// Types reconstructible from a [`Value`] tree.
pub trait Deserialize: Sized {
    /// Rebuilds `Self` from the wire model.
    ///
    /// # Errors
    ///
    /// Returns an [`Error`] when the value's shape does not match.
    fn from_value(value: &Value) -> Result<Self, Error>;
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Bool(b) => Ok(*b),
            other => Err(Error::custom(format!(
                "expected bool, found {}",
                other.kind()
            ))),
        }
    }
}

macro_rules! impl_serde_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            #[allow(unused_comparisons)]
            fn to_value(&self) -> Value {
                let v = *self;
                if v >= 0 && (v as u64) > i64::MAX as u64 {
                    Value::UInt(v as u64)
                } else {
                    Value::Int(v as i64)
                }
            }
        }

        impl Deserialize for $t {
            fn from_value(value: &Value) -> Result<Self, Error> {
                let out = match *value {
                    Value::Int(i) => <$t>::try_from(i).ok(),
                    Value::UInt(u) => <$t>::try_from(u).ok(),
                    _ => None,
                };
                out.ok_or_else(|| {
                    Error::custom(format!(
                        "expected {}, found {}", stringify!($t), value.kind()
                    ))
                })
            }
        }
    )*};
}

impl_serde_int!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::Float(*self)
    }
}

impl Deserialize for f64 {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match *value {
            Value::Float(f) => Ok(f),
            Value::Int(i) => Ok(i as f64),
            Value::UInt(u) => Ok(u as f64),
            Value::Null => Ok(f64::NAN),
            ref other => Err(Error::custom(format!(
                "expected number, found {}",
                other.kind()
            ))),
        }
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::Float(f64::from(*self))
    }
}

impl Deserialize for f32 {
    fn from_value(value: &Value) -> Result<Self, Error> {
        f64::from_value(value).map(|f| f as f32)
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_owned())
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Str(s) => Ok(s.clone()),
            other => Err(Error::custom(format!(
                "expected string, found {}",
                other.kind()
            ))),
        }
    }
}

impl Deserialize for &'static str {
    /// `&'static str` fields (e.g. preset names) can only be reconstructed by
    /// leaking the parsed string. This path is exercised by tests only; the
    /// leak is bounded and deliberate.
    fn from_value(value: &Value) -> Result<Self, Error> {
        String::from_value(value).map(|s| &*Box::leak(s.into_boxed_str()))
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Array(items) => items.iter().map(T::from_value).collect(),
            other => Err(Error::custom(format!(
                "expected array, found {}",
                other.kind()
            ))),
        }
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(v) => v.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

macro_rules! impl_serde_tuple {
    ($(($($n:tt $t:ident),+)),*) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn to_value(&self) -> Value {
                Value::Array(vec![$(self.$n.to_value()),+])
            }
        }

        impl<$($t: Deserialize),+> Deserialize for ($($t,)+) {
            fn from_value(value: &Value) -> Result<Self, Error> {
                match value {
                    Value::Array(items) => {
                        let expected = [$($n),+].len();
                        if items.len() != expected {
                            return Err(Error::custom(format!(
                                "expected {expected}-tuple, found array of {}", items.len()
                            )));
                        }
                        Ok(($($t::from_value(&items[$n])?,)+))
                    }
                    other => Err(Error::custom(format!(
                        "expected array, found {}", other.kind()
                    ))),
                }
            }
        }
    )*};
}

impl_serde_tuple!((0 A), (0 A, 1 B), (0 A, 1 B, 2 C), (0 A, 1 B, 2 C, 3 D));

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(value: &Value) -> Result<Self, Error> {
        Ok(value.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_roundtrip() {
        assert_eq!(u64::from_value(&42u64.to_value()).unwrap(), 42);
        assert_eq!(i32::from_value(&(-5i32).to_value()).unwrap(), -5);
        assert_eq!(f64::from_value(&1.5f64.to_value()).unwrap(), 1.5);
        assert_eq!(String::from_value(&"hi".to_value()).unwrap(), "hi");
        assert!(bool::from_value(&true.to_value()).unwrap());
    }

    #[test]
    fn containers_roundtrip() {
        let v = vec![1u64, 2, 3];
        assert_eq!(Vec::<u64>::from_value(&v.to_value()).unwrap(), v);
        let o: Option<u64> = None;
        assert_eq!(Option::<u64>::from_value(&o.to_value()).unwrap(), None);
        let t = (1u64, -2i64, 0.5f64);
        assert_eq!(<(u64, i64, f64)>::from_value(&t.to_value()).unwrap(), t);
    }

    #[test]
    fn field_lookup_errors() {
        let obj = Value::Object(vec![("a".into(), Value::Int(1))]);
        assert!(obj.field("a").is_ok());
        assert!(obj.field("b").is_err());
        assert!(Value::Null.field("a").is_err());
    }

    #[test]
    fn large_u64_uses_uint() {
        assert_eq!(u64::MAX.to_value(), Value::UInt(u64::MAX));
        assert_eq!(u64::from_value(&Value::UInt(u64::MAX)).unwrap(), u64::MAX);
    }
}
