//! Offline shim for `serde_derive`.
//!
//! A hand-rolled derive (no `syn`/`quote` available offline) that parses the
//! item's token stream directly and emits impls of the shim `serde` traits.
//! Supported shapes — exactly what this workspace declares:
//!
//! - structs with named fields, tuple structs, unit structs
//! - enums with unit, newtype, tuple and struct variants
//!
//! Generic items and `#[serde(...)]` attributes are not supported and panic
//! with a clear message at compile time.

use proc_macro::{Delimiter, TokenStream, TokenTree};

#[derive(Debug)]
enum Shape {
    NamedStruct {
        name: String,
        fields: Vec<String>,
    },
    TupleStruct {
        name: String,
        arity: usize,
    },
    UnitStruct {
        name: String,
    },
    Enum {
        name: String,
        variants: Vec<Variant>,
    },
}

#[derive(Debug)]
enum Variant {
    Unit(String),
    Tuple(String, usize),
    Struct(String, Vec<String>),
}

/// Derives the shim `serde::Serialize` for the annotated item.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let shape = parse_item(input);
    gen_serialize(&shape)
        .parse()
        .expect("generated Serialize impl parses")
}

/// Derives the shim `serde::Deserialize` for the annotated item.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let shape = parse_item(input);
    gen_deserialize(&shape)
        .parse()
        .expect("generated Deserialize impl parses")
}

// ---------------------------------------------------------------- parsing

fn parse_item(input: TokenStream) -> Shape {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut pos = 0;
    skip_attrs_and_vis(&tokens, &mut pos);
    let keyword = expect_ident(&tokens, &mut pos);
    let name = expect_ident(&tokens, &mut pos);
    if matches!(peek_punct(&tokens, pos), Some('<')) {
        panic!("serde shim derive: generic items are not supported (on `{name}`)");
    }
    match keyword.as_str() {
        "struct" => match tokens.get(pos) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => Shape::NamedStruct {
                name,
                fields: parse_named_fields(g.stream()),
            },
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                Shape::TupleStruct {
                    name,
                    arity: count_tuple_elems(g.stream()),
                }
            }
            _ => Shape::UnitStruct { name },
        },
        "enum" => match tokens.get(pos) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => Shape::Enum {
                name,
                variants: parse_variants(g.stream()),
            },
            _ => panic!("serde shim derive: malformed enum `{name}`"),
        },
        other => panic!("serde shim derive: unsupported item kind `{other}`"),
    }
}

fn skip_attrs_and_vis(tokens: &[TokenTree], pos: &mut usize) {
    loop {
        match tokens.get(*pos) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                *pos += 2; // `#` + bracket group
            }
            Some(TokenTree::Ident(i)) if i.to_string() == "pub" => {
                *pos += 1;
                if let Some(TokenTree::Group(g)) = tokens.get(*pos) {
                    if g.delimiter() == Delimiter::Parenthesis {
                        *pos += 1; // pub(crate) / pub(super) / pub(in ...)
                    }
                }
            }
            _ => return,
        }
    }
}

fn expect_ident(tokens: &[TokenTree], pos: &mut usize) -> String {
    match tokens.get(*pos) {
        Some(TokenTree::Ident(i)) => {
            *pos += 1;
            i.to_string()
        }
        other => panic!("serde shim derive: expected identifier, found {other:?}"),
    }
}

fn peek_punct(tokens: &[TokenTree], pos: usize) -> Option<char> {
    match tokens.get(pos) {
        Some(TokenTree::Punct(p)) => Some(p.as_char()),
        _ => None,
    }
}

/// Parses `name: Type, ...` field lists, returning the field names.
fn parse_named_fields(stream: TokenStream) -> Vec<String> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut fields = Vec::new();
    let mut pos = 0;
    while pos < tokens.len() {
        skip_attrs_and_vis(&tokens, &mut pos);
        if pos >= tokens.len() {
            break;
        }
        let name = expect_ident(&tokens, &mut pos);
        assert_eq!(
            peek_punct(&tokens, pos),
            Some(':'),
            "serde shim derive: expected `:` after field `{name}`"
        );
        pos += 1;
        skip_type(&tokens, &mut pos);
        fields.push(name);
        if matches!(peek_punct(&tokens, pos), Some(',')) {
            pos += 1;
        }
    }
    fields
}

/// Advances past one type, stopping at a top-level `,` (angle-bracket aware).
fn skip_type(tokens: &[TokenTree], pos: &mut usize) {
    let mut angle_depth = 0usize;
    while let Some(tok) = tokens.get(*pos) {
        if let TokenTree::Punct(p) = tok {
            match p.as_char() {
                '<' => angle_depth += 1,
                '>' => angle_depth = angle_depth.saturating_sub(1),
                ',' if angle_depth == 0 => return,
                _ => {}
            }
        }
        *pos += 1;
    }
}

fn count_tuple_elems(stream: TokenStream) -> usize {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    if tokens.is_empty() {
        return 0;
    }
    let mut count = 0;
    let mut pos = 0;
    while pos < tokens.len() {
        skip_attrs_and_vis(&tokens, &mut pos);
        if pos >= tokens.len() {
            break;
        }
        skip_type(&tokens, &mut pos);
        count += 1;
        if matches!(peek_punct(&tokens, pos), Some(',')) {
            pos += 1;
        }
    }
    count
}

fn parse_variants(stream: TokenStream) -> Vec<Variant> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut variants = Vec::new();
    let mut pos = 0;
    while pos < tokens.len() {
        skip_attrs_and_vis(&tokens, &mut pos);
        if pos >= tokens.len() {
            break;
        }
        let name = expect_ident(&tokens, &mut pos);
        match tokens.get(pos) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                variants.push(Variant::Tuple(name, count_tuple_elems(g.stream())));
                pos += 1;
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                variants.push(Variant::Struct(name, parse_named_fields(g.stream())));
                pos += 1;
            }
            _ => variants.push(Variant::Unit(name)),
        }
        if matches!(peek_punct(&tokens, pos), Some(',')) {
            pos += 1;
        }
    }
    variants
}

// ---------------------------------------------------------------- codegen

fn obj_entry(key: &str, value_expr: &str) -> String {
    format!("(::std::string::String::from(\"{key}\"), {value_expr})")
}

fn gen_serialize(shape: &Shape) -> String {
    match shape {
        Shape::NamedStruct { name, fields } => {
            let entries: Vec<String> = fields
                .iter()
                .map(|f| obj_entry(f, &format!("::serde::Serialize::to_value(&self.{f})")))
                .collect();
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> ::serde::Value {{\n\
                         ::serde::Value::Object(::std::vec![{}])\n\
                     }}\n\
                 }}",
                entries.join(", ")
            )
        }
        Shape::TupleStruct { name, arity } => {
            let items: Vec<String> = (0..*arity)
                .map(|i| format!("::serde::Serialize::to_value(&self.{i})"))
                .collect();
            let body = if *arity == 1 {
                items[0].clone()
            } else {
                format!("::serde::Value::Array(::std::vec![{}])", items.join(", "))
            };
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> ::serde::Value {{ {body} }}\n\
                 }}"
            )
        }
        Shape::UnitStruct { name } => format!(
            "impl ::serde::Serialize for {name} {{\n\
                 fn to_value(&self) -> ::serde::Value {{ ::serde::Value::Null }}\n\
             }}"
        ),
        Shape::Enum { name, variants } => {
            let arms: Vec<String> = variants
                .iter()
                .map(|v| match v {
                    Variant::Unit(vn) => format!(
                        "{name}::{vn} => \
                         ::serde::Value::Str(::std::string::String::from(\"{vn}\"))"
                    ),
                    Variant::Tuple(vn, arity) => {
                        let binds: Vec<String> = (0..*arity).map(|i| format!("x{i}")).collect();
                        let vals: Vec<String> = binds
                            .iter()
                            .map(|b| format!("::serde::Serialize::to_value({b})"))
                            .collect();
                        let inner = if *arity == 1 {
                            vals[0].clone()
                        } else {
                            format!("::serde::Value::Array(::std::vec![{}])", vals.join(", "))
                        };
                        format!(
                            "{name}::{vn}({}) => ::serde::Value::Object(::std::vec![{}])",
                            binds.join(", "),
                            obj_entry(vn, &inner)
                        )
                    }
                    Variant::Struct(vn, fields) => {
                        let binds = fields.join(", ");
                        let entries: Vec<String> = fields
                            .iter()
                            .map(|f| obj_entry(f, &format!("::serde::Serialize::to_value({f})")))
                            .collect();
                        let inner = format!(
                            "::serde::Value::Object(::std::vec![{}])",
                            entries.join(", ")
                        );
                        format!(
                            "{name}::{vn} {{ {binds} }} => \
                             ::serde::Value::Object(::std::vec![{}])",
                            obj_entry(vn, &inner)
                        )
                    }
                })
                .collect();
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> ::serde::Value {{\n\
                         match self {{ {} }}\n\
                     }}\n\
                 }}",
                arms.join(",\n")
            )
        }
    }
}

fn gen_deserialize(shape: &Shape) -> String {
    let err = |msg: &str| {
        format!(
            "::std::result::Result::Err(::serde::Error::custom(::std::format!(\
             \"{msg}\", value.kind())))"
        )
    };
    match shape {
        Shape::NamedStruct { name, fields } => {
            let inits: Vec<String> = fields
                .iter()
                .map(|f| format!("{f}: ::serde::Deserialize::from_value(value.field(\"{f}\")?)?"))
                .collect();
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                     fn from_value(value: &::serde::Value) \
                         -> ::std::result::Result<Self, ::serde::Error> {{\n\
                         ::std::result::Result::Ok({name} {{ {} }})\n\
                     }}\n\
                 }}",
                inits.join(", ")
            )
        }
        Shape::TupleStruct { name, arity } => {
            if *arity == 1 {
                return format!(
                    "impl ::serde::Deserialize for {name} {{\n\
                         fn from_value(value: &::serde::Value) \
                             -> ::std::result::Result<Self, ::serde::Error> {{\n\
                             ::std::result::Result::Ok({name}(\
                                 ::serde::Deserialize::from_value(value)?))\n\
                         }}\n\
                     }}"
                );
            }
            let inits: Vec<String> = (0..*arity)
                .map(|i| format!("::serde::Deserialize::from_value(&items[{i}])?"))
                .collect();
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                     fn from_value(value: &::serde::Value) \
                         -> ::std::result::Result<Self, ::serde::Error> {{\n\
                         match value {{\n\
                             ::serde::Value::Array(items) if items.len() == {arity} => \
                                 ::std::result::Result::Ok({name}({})),\n\
                             _ => {},\n\
                         }}\n\
                     }}\n\
                 }}",
                inits.join(", "),
                err(&format!(
                    "expected {arity}-element array for {name}, found {{}}"
                ))
            )
        }
        Shape::UnitStruct { name } => format!(
            "impl ::serde::Deserialize for {name} {{\n\
                 fn from_value(_value: &::serde::Value) \
                     -> ::std::result::Result<Self, ::serde::Error> {{\n\
                     ::std::result::Result::Ok({name})\n\
                 }}\n\
             }}"
        ),
        Shape::Enum { name, variants } => {
            let unit_arms: Vec<String> = variants
                .iter()
                .filter_map(|v| match v {
                    Variant::Unit(vn) => Some(format!(
                        "\"{vn}\" => ::std::result::Result::Ok({name}::{vn})"
                    )),
                    _ => None,
                })
                .collect();
            let tagged_arms: Vec<String> = variants
                .iter()
                .filter_map(|v| match v {
                    Variant::Unit(_) => None,
                    Variant::Tuple(vn, arity) => Some(if *arity == 1 {
                        format!(
                            "\"{vn}\" => ::std::result::Result::Ok({name}::{vn}(\
                             ::serde::Deserialize::from_value(inner)?))"
                        )
                    } else {
                        let inits: Vec<String> = (0..*arity)
                            .map(|i| format!("::serde::Deserialize::from_value(&items[{i}])?"))
                            .collect();
                        format!(
                            "\"{vn}\" => match inner {{\n\
                                 ::serde::Value::Array(items) if items.len() == {arity} => \
                                     ::std::result::Result::Ok({name}::{vn}({})),\n\
                                 _ => ::std::result::Result::Err(::serde::Error::custom(\
                                     \"malformed {vn} variant payload\")),\n\
                             }}",
                            inits.join(", ")
                        )
                    }),
                    Variant::Struct(vn, fields) => {
                        let inits: Vec<String> = fields
                            .iter()
                            .map(|f| {
                                format!(
                                    "{f}: ::serde::Deserialize::from_value(\
                                     inner.field(\"{f}\")?)?"
                                )
                            })
                            .collect();
                        Some(format!(
                            "\"{vn}\" => ::std::result::Result::Ok({name}::{vn} {{ {} }})",
                            inits.join(", ")
                        ))
                    }
                })
                .collect();
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                     fn from_value(value: &::serde::Value) \
                         -> ::std::result::Result<Self, ::serde::Error> {{\n\
                         match value {{\n\
                             ::serde::Value::Str(s) => match s.as_str() {{\n\
                                 {}\n\
                                 other => ::std::result::Result::Err(::serde::Error::custom(\
                                     ::std::format!(\"unknown {name} variant `{{}}`\", other))),\n\
                             }},\n\
                             ::serde::Value::Object(fields) if fields.len() == 1 => {{\n\
                                 let (tag, inner) = &fields[0];\n\
                                 match tag.as_str() {{\n\
                                     {}\n\
                                     other => ::std::result::Result::Err(::serde::Error::custom(\
                                         ::std::format!(\
                                         \"unknown {name} variant `{{}}`\", other))),\n\
                                 }}\n\
                             }},\n\
                             _ => {},\n\
                         }}\n\
                     }}\n\
                 }}",
                if unit_arms.is_empty() {
                    String::new()
                } else {
                    format!("{},", unit_arms.join(",\n"))
                },
                if tagged_arms.is_empty() {
                    String::new()
                } else {
                    format!("{},", tagged_arms.join(",\n"))
                },
                err(&format!("expected {name} variant, found {{}}"))
            )
        }
    }
}
