//! Offline shim for `serde_json`: a JSON writer/parser over the shim
//! [`serde::Value`] tree.
//!
//! Floats print through Rust's shortest-roundtrip formatter, so
//! serialize → parse → serialize is lossless and equal inputs always yield
//! byte-identical output (the determinism tests compare JSON strings).

#![forbid(unsafe_code)]

use serde::{Deserialize, Serialize, Value};

pub use serde::Error;

/// Serializes a value to a compact JSON string.
///
/// # Errors
///
/// Never fails for the shapes this workspace serializes; the `Result`
/// mirrors the real `serde_json` signature.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value());
    Ok(out)
}

/// Serializes a value to a human-indented JSON string.
///
/// # Errors
///
/// Never fails for the shapes this workspace serializes.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value_pretty(&mut out, &value.to_value(), 0);
    Ok(out)
}

/// Parses a JSON string into any [`Deserialize`] type.
///
/// # Errors
///
/// Returns an [`Error`] on malformed JSON or a shape mismatch.
pub fn from_str<T: Deserialize>(input: &str) -> Result<T, Error> {
    let value = parse_value_str(input)?;
    T::from_value(&value)
}

/// Parses a JSON string into a raw [`Value`] tree.
///
/// # Errors
///
/// Returns an [`Error`] on malformed JSON or trailing input.
pub fn parse_value_str(input: &str) -> Result<Value, Error> {
    let mut parser = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    parser.skip_ws();
    let value = parser.parse_value()?;
    parser.skip_ws();
    if parser.pos != parser.bytes.len() {
        return Err(Error::custom(format!(
            "trailing input at byte {}",
            parser.pos
        )));
    }
    Ok(value)
}

// ---------------------------------------------------------------- writing

fn write_value(out: &mut String, value: &Value) {
    match value {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::Int(i) => out.push_str(&i.to_string()),
        Value::UInt(u) => out.push_str(&u.to_string()),
        Value::Float(f) => write_float(out, *f),
        Value::Str(s) => write_string(out, s),
        Value::Array(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_value(out, item);
            }
            out.push(']');
        }
        Value::Object(fields) => {
            out.push('{');
            for (i, (key, val)) in fields.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_string(out, key);
                out.push(':');
                write_value(out, val);
            }
            out.push('}');
        }
    }
}

fn write_value_pretty(out: &mut String, value: &Value, depth: usize) {
    match value {
        Value::Array(items) if !items.is_empty() => {
            out.push_str("[\n");
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push_str(",\n");
                }
                indent(out, depth + 1);
                write_value_pretty(out, item, depth + 1);
            }
            out.push('\n');
            indent(out, depth);
            out.push(']');
        }
        Value::Object(fields) if !fields.is_empty() => {
            out.push_str("{\n");
            for (i, (key, val)) in fields.iter().enumerate() {
                if i > 0 {
                    out.push_str(",\n");
                }
                indent(out, depth + 1);
                write_string(out, key);
                out.push_str(": ");
                write_value_pretty(out, val, depth + 1);
            }
            out.push('\n');
            indent(out, depth);
            out.push('}');
        }
        other => write_value(out, other),
    }
}

fn indent(out: &mut String, depth: usize) {
    for _ in 0..depth {
        out.push_str("  ");
    }
}

fn write_float(out: &mut String, f: f64) {
    if !f.is_finite() {
        // real serde_json rejects non-finite floats; emitting null keeps
        // report generation total without poisoning downstream parsing
        out.push_str("null");
        return;
    }
    let s = f.to_string();
    out.push_str(&s);
    // keep floats parseable back as floats, matching serde_json's "1.0"
    if !s.contains(['.', 'e', 'E']) {
        out.push_str(".0");
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---------------------------------------------------------------- parsing

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::custom(format!(
                "expected `{}` at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn eat_literal(&mut self, lit: &str) -> bool {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            true
        } else {
            false
        }
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        self.skip_ws();
        match self.peek() {
            Some(b'n') if self.eat_literal("null") => Ok(Value::Null),
            Some(b't') if self.eat_literal("true") => Ok(Value::Bool(true)),
            Some(b'f') if self.eat_literal("false") => Ok(Value::Bool(false)),
            Some(b'"') => self.parse_string().map(Value::Str),
            Some(b'[') => self.parse_array(),
            Some(b'{') => self.parse_object(),
            Some(b) if b == b'-' || b.is_ascii_digit() => self.parse_number(),
            other => Err(Error::custom(format!(
                "unexpected input {other:?} at byte {}",
                self.pos
            ))),
        }
    }

    fn parse_array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => {
                    return Err(Error::custom(format!(
                        "malformed array at byte {}",
                        self.pos
                    )))
                }
            }
        }
    }

    fn parse_object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(fields));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            let value = self.parse_value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(fields));
                }
                _ => {
                    return Err(Error::custom(format!(
                        "malformed object at byte {}",
                        self.pos
                    )))
                }
            }
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .and_then(|h| u32::from_str_radix(h, 16).ok())
                                .and_then(char::from_u32)
                                .ok_or_else(|| {
                                    Error::custom(format!("bad \\u escape at byte {}", self.pos))
                                })?;
                            out.push(hex);
                            self.pos += 4;
                        }
                        other => {
                            return Err(Error::custom(format!("bad escape {other:?}")));
                        }
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // consume one UTF-8 scalar
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| Error::custom("invalid UTF-8 in string"))?;
                    let c = rest.chars().next().expect("non-empty by peek");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
                None => return Err(Error::custom("unterminated string")),
            }
        }
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::custom("invalid number bytes"))?;
        if is_float {
            text.parse::<f64>()
                .map(Value::Float)
                .map_err(|e| Error::custom(format!("bad float `{text}`: {e}")))
        } else if let Ok(i) = text.parse::<i64>() {
            Ok(Value::Int(i))
        } else if let Ok(u) = text.parse::<u64>() {
            Ok(Value::UInt(u))
        } else {
            Err(Error::custom(format!("integer out of range `{text}`")))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_roundtrip() {
        assert_eq!(to_string(&true).unwrap(), "true");
        assert_eq!(to_string(&42u64).unwrap(), "42");
        assert_eq!(to_string(&-1.5f64).unwrap(), "-1.5");
        assert_eq!(to_string(&2.0f64).unwrap(), "2.0");
        assert_eq!(to_string("a\"b").unwrap(), "\"a\\\"b\"");
        assert_eq!(from_str::<u64>("42").unwrap(), 42);
        assert_eq!(from_str::<f64>("-1.5").unwrap(), -1.5);
        assert_eq!(from_str::<String>("\"a\\\"b\"").unwrap(), "a\"b");
    }

    #[test]
    fn containers_roundtrip() {
        let v = vec![1.5f64, -2.0, 3.25];
        let json = to_string(&v).unwrap();
        assert_eq!(from_str::<Vec<f64>>(&json).unwrap(), v);
        let opt: Option<u64> = None;
        assert_eq!(to_string(&opt).unwrap(), "null");
        assert_eq!(from_str::<Option<u64>>("null").unwrap(), None);
    }

    #[test]
    fn object_order_is_preserved() {
        let value = Value::Object(vec![
            ("b".into(), Value::Int(1)),
            ("a".into(), Value::Int(2)),
        ]);
        assert_eq!(to_string(&value).unwrap(), "{\"b\":1,\"a\":2}");
        assert_eq!(parse_value_str("{\"b\":1,\"a\":2}").unwrap(), value);
    }

    #[test]
    fn float_shortest_roundtrip() {
        for f in [0.1, 1.0 / 3.0, 1e-300, 123456.789, f64::MAX] {
            let json = to_string(&f).unwrap();
            assert_eq!(from_str::<f64>(&json).unwrap(), f, "via {json}");
        }
    }

    #[test]
    fn pretty_output_parses_back() {
        let value = Value::Object(vec![
            (
                "xs".into(),
                Value::Array(vec![Value::Int(1), Value::Int(2)]),
            ),
            ("name".into(), Value::Str("t".into())),
        ]);
        let pretty = to_string_pretty(&value).unwrap();
        assert_eq!(parse_value_str(&pretty).unwrap(), value);
    }

    #[test]
    fn rejects_trailing_garbage() {
        assert!(from_str::<u64>("42 x").is_err());
        assert!(from_str::<u64>("").is_err());
    }
}
